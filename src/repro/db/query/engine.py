"""POSTQUEL planner and executor.

The executor runs nested-loop joins over the statement's range
variables.  The planner is deliberately simple but real: for each range
variable it extracts top-level equality conjuncts of the qualification
and, when the referenced table has a B-tree index whose key columns are
exactly covered by constant equalities, uses an index scan instead of a
sequential scan ("indices may be defined to make file system operations
run faster, at the user's discretion").

Time travel composes per range variable: ``from f in naming[t0]`` scans
``naming`` under an as-of snapshot for ``t0`` while other variables see
the present.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.db.query import ast
from repro.db.query.parser import parse, parse_expression
from repro.db.snapshot import Snapshot
from repro.db.table import Table
from repro.db.transactions import Transaction
from repro.errors import QueryError


class _Scope:
    """One range variable bound to a table and snapshot."""

    def __init__(self, name: str, table: Table, snapshot: Snapshot) -> None:
        self.name = name
        self.table = table
        self.snapshot = snapshot
        self.colnames = table.schema.column_names()


class Evaluator:
    """Evaluates expressions over an environment of bound rows."""

    def __init__(self, db, scopes: Sequence[_Scope], snapshot: Snapshot,
                 params: Sequence[object] = ()) -> None:
        self.db = db
        self.scopes = {s.name: s for s in scopes}
        self.snapshot = snapshot
        self.params = params
        self.env: dict[str, tuple] = {}

    # -- variable resolution ------------------------------------------------

    def _resolve_var(self, expr: ast.Var) -> object:
        if expr.qualifier is not None:
            scope = self.scopes.get(expr.qualifier)
            if scope is None:
                raise QueryError(f"unknown range variable {expr.qualifier!r}")
            row = self.env.get(expr.qualifier)
            if row is None:
                raise QueryError(f"range variable {expr.qualifier!r} not bound")
            return row[scope.table.schema.column_index(expr.name)]
        matches = [s for s in self.scopes.values() if expr.name in s.colnames]
        if not matches:
            raise QueryError(f"unknown column {expr.name!r}")
        if len(matches) > 1:
            raise QueryError(f"ambiguous column {expr.name!r}")
        scope = matches[0]
        row = self.env.get(scope.name)
        if row is None:
            raise QueryError(f"range variable {scope.name!r} not bound")
        return row[scope.table.schema.column_index(expr.name)]

    # -- evaluation -------------------------------------------------------------

    def eval(self, expr: ast.Expr) -> object:
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.Param):
            if not (1 <= expr.index <= len(self.params)):
                raise QueryError(f"no argument ${expr.index}")
            return self.params[expr.index - 1]
        if isinstance(expr, ast.Var):
            return self._resolve_var(expr)
        if isinstance(expr, ast.FuncCall):
            args = [self.eval(a) for a in expr.args]
            return self.db.funcs.call(expr.name, args, self.snapshot)
        if isinstance(expr, ast.UnaryOp):
            value = self.eval(expr.operand)
            if expr.op == "not":
                return not value
            if expr.op == "-":
                return -value
            raise QueryError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.BinOp):
            return self._eval_binop(expr)
        raise QueryError(f"cannot evaluate {expr!r}")

    def _eval_binop(self, expr: ast.BinOp) -> object:
        op = expr.op
        if op == "and":
            return bool(self.eval(expr.left)) and bool(self.eval(expr.right))
        if op == "or":
            return bool(self.eval(expr.left)) or bool(self.eval(expr.right))
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        try:
            if op == "=":
                return left == right
            if op == "!=":
                return left != right
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
            if op == "in":
                return left in right
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return left / right
        except TypeError as exc:
            raise QueryError(f"type error in {op!r}: {exc}") from None
        raise QueryError(f"unknown operator {op!r}")

    def is_const(self, expr: ast.Expr) -> bool:
        """True if the expression references no range variables."""
        if isinstance(expr, (ast.Literal, ast.Param)):
            return True
        if isinstance(expr, ast.Var):
            return False
        if isinstance(expr, ast.FuncCall):
            return all(self.is_const(a) for a in expr.args)
        if isinstance(expr, ast.UnaryOp):
            return self.is_const(expr.operand)
        if isinstance(expr, ast.BinOp):
            return self.is_const(expr.left) and self.is_const(expr.right)
        return False


#: POSTQUEL aggregate functions, computed over the qualification's
#: matching rows.  An aggregate name shadows any user-defined function
#: of the same name inside a target list.
AGGREGATES = frozenset({"count", "sum", "avg", "min", "max"})


class _Aggregate:
    """One running aggregate over the result stream."""

    def __init__(self, kind: str, argument: ast.Expr) -> None:
        self.kind = kind
        self.argument = argument
        self.count = 0
        self.total = 0
        self.best = None

    def feed(self, value: object) -> None:
        if value is None:
            return
        self.count += 1
        if self.kind in ("sum", "avg"):
            self.total += value
        elif self.kind == "min":
            self.best = value if self.best is None else min(self.best, value)
        elif self.kind == "max":
            self.best = value if self.best is None else max(self.best, value)

    def result(self) -> object:
        if self.kind == "count":
            return self.count
        if self.kind == "sum":
            return self.total
        if self.kind == "avg":
            return self.total / self.count if self.count else None
        return self.best


def _aggregate_of(expr: ast.Expr) -> tuple[str, ast.Expr] | None:
    """(kind, argument) when the expression is an aggregate call."""
    if isinstance(expr, ast.FuncCall) and expr.name.lower() in AGGREGATES:
        if len(expr.args) != 1:
            raise QueryError(f"{expr.name} takes exactly one argument")
        return expr.name.lower(), expr.args[0]
    return None


def _conjuncts(expr: ast.Expr | None) -> list[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinOp) and expr.op == "and":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


class QueryEngine:
    """Entry point: parse and execute one statement."""

    def __init__(self, db) -> None:
        self.db = db

    # -- public API ---------------------------------------------------------

    def execute(self, tx: Transaction, text: str,
                default_relation: str | None = None) -> list[tuple]:
        stmt = parse(text)
        snapshot = self.db.snapshot(tx)
        if isinstance(stmt, ast.Retrieve):
            return self._retrieve(tx, stmt, snapshot, default_relation)
        if isinstance(stmt, ast.Append):
            return self._append(tx, stmt, snapshot)
        if isinstance(stmt, ast.Delete):
            return self._delete(tx, stmt, snapshot, default_relation)
        if isinstance(stmt, ast.Replace):
            return self._replace(tx, stmt, snapshot, default_relation)
        if isinstance(stmt, ast.DefineType):
            self.db.catalog.define_type(tx, stmt.name)
            return []
        if isinstance(stmt, ast.DefineFunction):
            if stmt.lang not in ("python", "postquel", "c"):
                raise QueryError(f"unsupported language {stmt.lang!r}")
            lang = "python" if stmt.lang == "c" else stmt.lang
            self.db.catalog.define_function(
                tx, stmt.name, lang, list(stmt.argtypes), stmt.rettype,
                stmt.src, stmt.typrestrict)
            return []
        if isinstance(stmt, ast.DefineIndex):
            self.db.create_index(tx, stmt.table, list(stmt.keycols))
            return []
        if isinstance(stmt, ast.DefineRule):
            self.db.rules.define_rule(tx, stmt.name, stmt.table, stmt.event,
                                      stmt.qualification, stmt.action)
            return []
        if isinstance(stmt, ast.RemoveRule):
            self.db.rules.drop_rule(tx, stmt.name)
            return []
        if isinstance(stmt, ast.RemoveTable):
            self.db.drop_table(tx, stmt.name)
            return []
        raise QueryError(f"unsupported statement {stmt!r}")

    # -- scopes ------------------------------------------------------------------

    def _scopes_for(self, tx: Transaction, froms: Sequence[ast.RangeVar],
                    snapshot: Snapshot,
                    default_relation: str | None) -> list[_Scope]:
        if not froms and default_relation is not None:
            froms = [ast.RangeVar(default_relation, default_relation, None)]
        scopes = []
        for rv in froms:
            table = self.db.table(rv.relation, tx)
            var_snapshot = snapshot
            if rv.asof is not None:
                const_eval = Evaluator(self.db, [], snapshot)
                when = const_eval.eval(rv.asof)
                if rv.asof_end is not None:
                    from repro.db.snapshot import IntervalSnapshot
                    until = const_eval.eval(rv.asof_end)
                    var_snapshot = IntervalSnapshot(self.db.tm,
                                                    float(when), float(until))
                else:
                    var_snapshot = self.db.asof(float(when))
            scopes.append(_Scope(rv.name, table, var_snapshot))
        return scopes

    # -- row sources (the planner) ---------------------------------------------------

    def _row_source(self, scope: _Scope, where: ast.Expr | None,
                    evaluator: Evaluator,
                    tx: Transaction | None) -> Iterator[tuple]:
        """Rows of one range variable: index scan when a usable index
        is fully covered by constant equality conjuncts, else a
        sequential scan."""
        eq: dict[str, object] = {}
        for conj in _conjuncts(where):
            if not (isinstance(conj, ast.BinOp) and conj.op == "="):
                continue
            for lhs, rhs in ((conj.left, conj.right), (conj.right, conj.left)):
                if (isinstance(lhs, ast.Var)
                        and (lhs.qualifier == scope.name
                             or (lhs.qualifier is None
                                 and lhs.name in scope.colnames))
                        and evaluator.is_const(rhs)):
                    eq[lhs.name] = evaluator.eval(rhs)
        for index_info in scope.table.info.indexes:
            if all(col in eq for col in index_info.keycols):
                key = tuple(eq[col] for col in index_info.keycols)
                return (row for _tid, row in scope.table.index_eq(
                    index_info.keycols, key, scope.snapshot, tx))
        return (row for _tid, row in scope.table.scan(scope.snapshot, tx))

    # -- retrieve ------------------------------------------------------------------------

    def _retrieve(self, tx: Transaction, stmt: ast.Retrieve,
                  snapshot: Snapshot,
                  default_relation: str | None) -> list[tuple]:
        scopes = self._scopes_for(tx, stmt.froms, snapshot, default_relation)
        evaluator = Evaluator(self.db, scopes, snapshot)
        results: list[tuple] = []

        aggregates = [_aggregate_of(t.expr) for t in stmt.targets]
        agg_mode = any(a is not None for a in aggregates)
        if agg_mode and not all(a is not None for a in aggregates):
            raise QueryError(
                "aggregate and plain targets cannot mix (no grouping)")
        accumulators = [_Aggregate(kind, arg) for kind, arg in aggregates] \
            if agg_mode else []

        def emit() -> None:
            if self.db.cpu is not None:
                self.db.cpu.query_row()
            if stmt.where is not None and not evaluator.eval(stmt.where):
                return
            if agg_mode:
                for acc in accumulators:
                    acc.feed(evaluator.eval(acc.argument))
                return
            results.append(tuple(evaluator.eval(t.expr) for t in stmt.targets))

        def recurse(depth: int) -> None:
            if depth == len(scopes):
                emit()
                return
            scope = scopes[depth]
            for row in self._row_source(scope, stmt.where, evaluator, tx):
                evaluator.env[scope.name] = row
                recurse(depth + 1)
            evaluator.env.pop(scope.name, None)

        if scopes:
            recurse(0)
        else:
            emit()  # constant query, e.g. retrieve (1+2)

        if agg_mode:
            results = [tuple(acc.result() for acc in accumulators)]

        if stmt.unique:
            seen = set()
            deduped = []
            for row in results:
                if row not in seen:
                    seen.add(row)
                    deduped.append(row)
            results = deduped
        if stmt.sort_by is not None:
            idx = self._sort_index(stmt)
            results.sort(key=lambda r: r[idx], reverse=stmt.sort_desc)
        if stmt.into is not None:
            self._materialize(tx, stmt, scopes, results)
            return []
        return results

    # -- retrieve into: materialized result tables --------------------------

    def _materialize(self, tx: Transaction, stmt: ast.Retrieve,
                     scopes: list[_Scope], results: list[tuple]) -> None:
        """Create ``stmt.into`` from the result set.  This is how
        expensive function results (SFS would call them transducer
        outputs) become a table that ``define index`` can make fast."""
        from repro.db.tuples import Column, Schema
        columns = []
        for i, target in enumerate(stmt.targets):
            name = target.label
            if name is None and isinstance(target.expr, ast.Var):
                name = target.expr.name
            if name is None and isinstance(target.expr, ast.FuncCall):
                name = target.expr.name
            columns.append(Column(name or f"column{i + 1}",
                                  self._infer_type(target.expr, scopes)))
        schema = Schema(columns)
        table = self.db.create_table(tx, stmt.into, schema)
        for row in results:
            table.insert(tx, row)

    def _infer_type(self, expr: ast.Expr, scopes: list[_Scope]) -> str:
        """Best-effort static typing of a target expression."""
        if isinstance(expr, ast.Literal):
            if isinstance(expr.value, bool):
                return "bool"
            if isinstance(expr.value, int):
                return "int8"
            if isinstance(expr.value, float):
                return "float8"
            if isinstance(expr.value, (bytes, bytearray)):
                return "bytea"
            return "text"
        if isinstance(expr, ast.Var):
            for scope in scopes:
                if (expr.qualifier in (None, scope.name)
                        and expr.name in scope.colnames):
                    idx = scope.table.schema.column_index(expr.name)
                    return scope.table.schema.columns[idx].typ
            return "text"
        if isinstance(expr, ast.FuncCall):
            proc = self.db.catalog.lookup_function(
                expr.name, self.db._read_snapshot(None))
            if proc is not None and proc.rettype in (
                    "int4", "int8", "oid", "float8", "bool", "time",
                    "text", "bytea"):
                return proc.rettype
            return "text"
        if isinstance(expr, ast.UnaryOp):
            if expr.op == "not":
                return "bool"
            return self._infer_type(expr.operand, scopes)
        if isinstance(expr, ast.BinOp):
            if expr.op in ("and", "or", "=", "!=", "<", "<=", ">", ">=", "in"):
                return "bool"
            left = self._infer_type(expr.left, scopes)
            right = self._infer_type(expr.right, scopes)
            if expr.op == "/" or "float8" in (left, right):
                return "float8"
            if left == right:
                return left
            return "int8" if {left, right} <= {"int4", "int8", "oid"} \
                else "text"
        return "text"

    def _sort_index(self, stmt: ast.Retrieve) -> int:
        for i, target in enumerate(stmt.targets):
            if target.label == stmt.sort_by:
                return i
            if isinstance(target.expr, ast.Var) and target.expr.name == stmt.sort_by:
                return i
        raise QueryError(f"sort column {stmt.sort_by!r} not in target list")

    # -- DML --------------------------------------------------------------------------------

    def _append(self, tx: Transaction, stmt: ast.Append,
                snapshot: Snapshot) -> list[tuple]:
        table = self.db.table(stmt.relation, tx)
        evaluator = Evaluator(self.db, [], snapshot)
        assigns = {name: evaluator.eval(expr) for name, expr in stmt.assigns}
        row = []
        for col in table.schema.columns:
            if col.name not in assigns:
                raise QueryError(
                    f"append to {stmt.relation!r} missing column {col.name!r}")
            row.append(assigns.pop(col.name))
        if assigns:
            raise QueryError(f"unknown columns in append: {sorted(assigns)}")
        table.insert(tx, tuple(row))
        return []

    def _delete(self, tx: Transaction, stmt: ast.Delete, snapshot: Snapshot,
                default_relation: str | None) -> list[tuple]:
        froms = stmt.froms or (ast.RangeVar(stmt.var, stmt.var, None),)
        scopes = self._scopes_for(tx, froms, snapshot, default_relation)
        target = next((s for s in scopes if s.name == stmt.var), None)
        if target is None:
            raise QueryError(f"delete target {stmt.var!r} not in from clause")
        evaluator = Evaluator(self.db, scopes, snapshot)
        victims = self._matching_tids(stmt.where, scopes, target, evaluator, tx)
        for tid in victims:
            target.table.delete(tx, tid)
        return []

    def _replace(self, tx: Transaction, stmt: ast.Replace, snapshot: Snapshot,
                 default_relation: str | None) -> list[tuple]:
        froms = stmt.froms or (ast.RangeVar(stmt.var, stmt.var, None),)
        scopes = self._scopes_for(tx, froms, snapshot, default_relation)
        target = next((s for s in scopes if s.name == stmt.var), None)
        if target is None:
            raise QueryError(f"replace target {stmt.var!r} not in from clause")
        evaluator = Evaluator(self.db, scopes, snapshot)
        updates: list[tuple] = []
        for tid, row in self._matching_rows(stmt.where, scopes, target,
                                            evaluator, tx):
            evaluator.env[target.name] = row
            new_row = list(row)
            for name, expr in stmt.assigns:
                new_row[target.table.schema.column_index(name)] = \
                    evaluator.eval(expr)
            updates.append((tid, tuple(new_row)))
        for tid, new_row in updates:
            target.table.update(tx, tid, new_row)
        return []

    def _matching_rows(self, where: ast.Expr | None, scopes: list[_Scope],
                       target: _Scope, evaluator: Evaluator,
                       tx: Transaction) -> list[tuple]:
        """(tid, row) pairs of the target scope matching the
        qualification, materialized before mutation."""
        matches: list[tuple] = []

        others = [s for s in scopes if s is not target]

        def qual_ok() -> bool:
            if self.db.cpu is not None:
                self.db.cpu.query_row()
            return where is None or bool(evaluator.eval(where))

        def recurse(depth: int, tid, row) -> bool:
            if depth == len(others):
                return qual_ok()
            scope = others[depth]
            for other_row in self._row_source(scope, where, evaluator, tx):
                evaluator.env[scope.name] = other_row
                if recurse(depth + 1, tid, row):
                    evaluator.env.pop(scope.name, None)
                    return True
            evaluator.env.pop(scope.name, None)
            return False

        for tid, row in list(target.table.scan(target.snapshot, tx)):
            evaluator.env[target.name] = row
            if recurse(0, tid, row):
                matches.append((tid, row))
        evaluator.env.pop(target.name, None)
        return matches

    def _matching_tids(self, where, scopes, target, evaluator, tx) -> list:
        return [tid for tid, _row in
                self._matching_rows(where, scopes, target, evaluator, tx)]


def evaluate_expression_text(db, text: str, args: list[object],
                             snapshot: Snapshot) -> object:
    """Evaluate a POSTQUEL-language function body: a bare expression
    with $N bound to ``args``."""
    expr = parse_expression(text)
    return Evaluator(db, [], snapshot, params=args).eval(expr)
