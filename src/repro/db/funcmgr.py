"""Extensible types and user-defined functions.

"POSTGRES allows users to define new types for use in the database
system.  In addition, users may write functions in C or in POSTQUEL…
These functions may be registered with the database system, and will be
dynamically loaded by the data manager when they are invoked."

The reproduction maps "C functions dynamically loaded into the data
manager" to Python callables held in a process-level registry keyed by
the catalog row's ``src`` column; ``POSTQUEL``-language functions store
their expression text in ``src`` and are evaluated by the query engine.
Because function definitions are catalog *records*, redefining a
function leaves its old version visible to time travel — "users can
even run old versions of these functions".
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.db.catalog import ProcInfo
from repro.db.snapshot import Snapshot
from repro.db.transactions import Transaction
from repro.errors import FileTypeError, FunctionError

LANG_PYTHON = "python"
LANG_POSTQUEL = "postquel"

#: the "dynamic loader": registry key -> callable.  Process-wide, like
#: a directory of shared objects.
_PYTHON_REGISTRY: dict[str, Callable] = {}


def load_function(registry_key: str) -> Callable:
    """Resolve a registry key, as the data manager dynamically loading
    a shared object would."""
    try:
        return _PYTHON_REGISTRY[registry_key]
    except KeyError:
        raise FunctionError(
            f"no loadable function registered under {registry_key!r}") from None


def snapshot_aware(fn: Callable) -> Callable:
    """Mark a callable as wanting the active snapshot: it is invoked as
    ``fn(*args, snapshot=snapshot)``.  Inversion's metadata and
    file-content functions need this so that calling them under a
    time-travel snapshot returns *historical* answers."""
    fn._wants_snapshot = True
    return fn


def register_callable(registry_key: str, fn: Callable) -> None:
    """Install a callable in the loader registry (idempotent for the
    same object; replacing is allowed — it models recompiling a .so)."""
    _PYTHON_REGISTRY[registry_key] = fn


def registry_keys() -> list[str]:
    return sorted(_PYTHON_REGISTRY)


class FunctionManager:
    """Catalog-backed function definition and invocation."""

    def __init__(self, db) -> None:
        self.db = db

    # -- definition ------------------------------------------------------

    def define_python(self, tx: Transaction, name: str, fn: Callable,
                      argtypes: Sequence[str], rettype: str,
                      registry_key: str | None = None,
                      typrestrict: str = "") -> ProcInfo:
        """Register a Python ("C") function: install the callable in the
        loader registry and record it in pg_proc."""
        key = registry_key or f"lib:{name}"
        register_callable(key, fn)
        return self.db.catalog.define_function(
            tx, name, LANG_PYTHON, list(argtypes), rettype, key, typrestrict)

    def define_postquel(self, tx: Transaction, name: str, expression: str,
                        argtypes: Sequence[str], rettype: str,
                        typrestrict: str = "") -> ProcInfo:
        """Register a POSTQUEL-language function: the expression text is
        the stored source; arguments are referenced as $1, $2, …"""
        return self.db.catalog.define_function(
            tx, name, LANG_POSTQUEL, list(argtypes), rettype, expression,
            typrestrict)

    # -- lookup/invocation ---------------------------------------------------

    def lookup(self, name: str, snapshot: Snapshot) -> ProcInfo | None:
        return self.db.catalog.lookup_function(name, snapshot)

    def call(self, name: str, args: Sequence[object],
             snapshot: Snapshot) -> object:
        """Invoke a registered function under ``snapshot`` — a
        historical snapshot invokes the *historical* definition."""
        proc = self.lookup(name, snapshot)
        if proc is None:
            raise FunctionError(f"no function named {name!r}")
        return self.call_proc(proc, args, snapshot)

    def call_proc(self, proc: ProcInfo, args: Sequence[object],
                  snapshot: Snapshot) -> object:
        if self.db.cpu is not None:
            self.db.cpu.udf_call()
        if proc.lang == LANG_PYTHON:
            fn = load_function(proc.src)
            try:
                if getattr(fn, "_wants_snapshot", False):
                    return fn(*args, snapshot=snapshot)
                return fn(*args)
            except (FunctionError, FileTypeError):
                raise
            except Exception as exc:
                raise FunctionError(
                    f"function {proc.name!r} raised: {exc}") from exc
        if proc.lang == LANG_POSTQUEL:
            from repro.db.query.engine import evaluate_expression_text
            return evaluate_expression_text(self.db, proc.src, list(args),
                                            snapshot)
        raise FunctionError(f"unknown function language {proc.lang!r}")
