"""The vacuum cleaner: record archiving.

"Periodically, obsolete records must be garbage-collected from the
database, and either moved elsewhere or physically deleted…  If time
travel is desired, the records must be saved forever somewhere.  This
process is referred to as record archiving.  POSTGRES includes a
special-purpose process, called the vacuum cleaner, that archives
records.  Obsolete records are physically removed from the table in
which they originally appeared, and are moved to an archive."

For a table ``t`` the cleaner maintains an archive relation ``a_t``
(optionally on a slower/cheaper device — the natural home for the
optical jukebox) holding superseded record versions *with their
original transaction stamps*, plus archive copies of ``t``'s B-tree
indexes so historical index lookups stay fast.  After moving records
out, the live heap is compacted and its indexes rebuilt.

Time-travel reads (:class:`~repro.db.snapshot.AsOfSnapshot`) through
:class:`~repro.db.table.Table` transparently merge heap and archive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.btree import BTree
from repro.db.catalog import TableInfo
from repro.db.heap import HeapFile
from repro.db.locks import EXCLUSIVE
from repro.db.snapshot import BootstrapSnapshot
from repro.db.transactions import ABORTED
from repro.db.tuples import INVALID_XID
from repro.errors import TableError


@dataclass
class VacuumStats:
    """What one vacuum pass did."""

    table: str
    scanned: int = 0
    archived: int = 0
    expunged: int = 0        # aborted-insert garbage physically deleted
    kept: int = 0
    pages_before: int = 0
    pages_after: int = 0


class VacuumCleaner:
    """Archives obsolete record versions out of live tables.

    With ``keep_history=False`` obsolete records are physically
    discarded instead of archived — "if the records are not saved
    elsewhere, some historical state of the database is lost … For
    files in which the user has no interest in maintaining history,
    POSTGRES can be instructed not to save old versions."
    """

    def __init__(self, db, archive_device: str | None = None,
                 keep_history: bool = True) -> None:
        self.db = db
        self.archive_device = archive_device
        self.keep_history = keep_history

    # -- classification ----------------------------------------------------

    def _classify(self, xmin: int, xmax: int) -> str:
        """'keep' (live or in-flight), 'archive' (superseded by a
        committed delete), or 'expunge' (inserted by an aborted
        transaction — never visible to anyone, ever)."""
        tm = self.db.tm
        if tm.state(xmin) == ABORTED:
            return "expunge"
        if xmax != INVALID_XID and tm.is_committed(xmax):
            return "archive"
        return "keep"

    # -- archive DDL -----------------------------------------------------------

    def _ensure_archive(self, tx, info: TableInfo) -> tuple[HeapFile, list[tuple[tuple[str, ...], BTree]]]:
        """Create (if needed) and return the archive heap and its
        indexes, mirroring the live table's indexes."""
        name = f"a_{info.name}"
        snapshot = self.db.snapshot(tx)
        archive_info = self.db.catalog.lookup_table(name, snapshot, use_cache=False)
        devname = self.archive_device or info.devname
        if archive_info is None:
            dev = self.db.switch.get(devname)
            oid = self.db.catalog.allocate_oid()
            dev.create_relation(name)
            self.db.catalog.add_table_row(tx, oid, name, dev.name, "a", info.schema)
            for ix in info.indexes:
                idxname = f"a_{ix.name}"
                dev.create_relation(idxname)
                BTree.create(self.db.buffers, dev.name, idxname, cpu=self.db.cpu)
                self.db.catalog.add_index_row(
                    tx, self.db.catalog.allocate_oid(), idxname, oid,
                    list(ix.keycols))
            archive_info = self.db.catalog.lookup_table(name, snapshot,
                                                        use_cache=False)
        heap = HeapFile(self.db.buffers, archive_info.devname,
                        archive_info.name, archive_info.schema, cpu=self.db.cpu)
        btrees = [(ix.keycols,
                   BTree(self.db.buffers, archive_info.devname, ix.name,
                         cpu=self.db.cpu))
                  for ix in archive_info.indexes]
        return heap, btrees

    # -- the pass ------------------------------------------------------------------

    def vacuum_table(self, table_name: str) -> VacuumStats:
        """Archive obsolete versions of one table and compact it."""
        info = self.db.catalog.lookup_table(table_name,
                                            BootstrapSnapshot(self.db.tm),
                                            use_cache=False)
        if info is None:
            raise TableError(f"no table named {table_name!r}")
        if info.relkind != "h":
            raise TableError(f"cannot vacuum relation of kind {info.relkind!r}")

        tx = self.db.begin()
        self.db.locks.acquire(tx, ("rel", info.oid), EXCLUSIVE)
        stats = VacuumStats(table=table_name)
        try:
            heap = HeapFile(self.db.buffers, info.devname, info.name,
                            info.schema, cpu=self.db.cpu)
            stats.pages_before = heap.npages()
            if self.keep_history:
                archive_heap, archive_btrees = self._ensure_archive(tx, info)
            else:
                archive_heap, archive_btrees = None, []
            schema = info.schema
            keycol_idx = {
                ix.keycols: [schema.column_index(c) for c in ix.keycols]
                for ix in info.indexes
            }

            keep: list[tuple[int, int, tuple]] = []
            for _tid, xmin, xmax, values in heap.scan_all_versions():
                stats.scanned += 1
                verdict = self._classify(xmin, xmax)
                if verdict == "archive":
                    if archive_heap is None:
                        # History discarded by request: the version is
                        # simply expunged.
                        stats.expunged += 1
                        continue
                    atid = archive_heap.insert_raw(xmin, xmax, values)
                    for keycols, btree in archive_btrees:
                        key = tuple(values[i] for i in keycol_idx[keycols])
                        btree.insert(tx, key, atid)
                    stats.archived += 1
                elif verdict == "expunge":
                    stats.expunged += 1
                else:
                    # Clear an xmax stamp left by an aborted deleter so
                    # the rewritten record is unambiguous.
                    if xmax != INVALID_XID and not self.db.tm.is_committed(xmax):
                        xmax = INVALID_XID
                    keep.append((xmin, xmax, values))
                    stats.kept += 1

            # Make the archive durable before destroying the originals.
            self.db.buffers.flush_all()

            # Rewrite the live heap compacted, then rebuild its indexes.
            self._rewrite_heap(info, keep)
            stats.pages_after = HeapFile(self.db.buffers, info.devname,
                                         info.name, schema).npages()
            tx.wrote = True
            self.db.commit(tx)
            return stats
        except BaseException:
            self.db.abort(tx)
            raise

    def _rewrite_heap(self, info: TableInfo,
                      keep: list[tuple[int, int, tuple]]) -> None:
        """Replace the heap (and index) relations with compacted
        rebuilds.  TIDs change, so indexes are rebuilt from scratch."""
        dev = self.db.switch.get(info.devname)
        buffers = self.db.buffers
        buffers.flush_relation(info.devname, info.name)
        buffers.drop_relation(info.devname, info.name)
        dev.drop_relation(info.name)
        dev.create_relation(info.name)
        heap = HeapFile(buffers, info.devname, info.name, info.schema,
                        cpu=self.db.cpu)
        new_tids = [heap.insert_raw(xmin, xmax, values)
                    for xmin, xmax, values in keep]
        schema = info.schema
        for ix in info.indexes:
            buffers.drop_relation(info.devname, ix.name)
            dev.drop_relation(ix.name)
            dev.create_relation(ix.name)
            btree = BTree.create(buffers, info.devname, ix.name, cpu=self.db.cpu)
            col_idx = [schema.column_index(c) for c in ix.keycols]
            for tid, (_xmin, _xmax, values) in zip(new_tids, keep):
                key = tuple(values[i] for i in col_idx)
                btree.insert(None, key, tid)
        buffers.flush_all()
