"""The vacuum cleaner: record archiving.

"Periodically, obsolete records must be garbage-collected from the
database, and either moved elsewhere or physically deleted…  If time
travel is desired, the records must be saved forever somewhere.  This
process is referred to as record archiving.  POSTGRES includes a
special-purpose process, called the vacuum cleaner, that archives
records.  Obsolete records are physically removed from the table in
which they originally appeared, and are moved to an archive."

For a table ``t`` the cleaner maintains an archive relation ``a_t``
(optionally on a slower/cheaper device — the natural home for the
optical jukebox) holding superseded record versions *with their
original transaction stamps*, plus archive copies of ``t``'s B-tree
indexes so historical index lookups stay fast.  After moving records
out, the live heap is compacted and its indexes rebuilt.

Time-travel reads (:class:`~repro.db.snapshot.AsOfSnapshot`) through
:class:`~repro.db.table.Table` transparently merge heap and archive.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.db.btree import BTree
from repro.db.catalog import TableInfo
from repro.db.heap import HeapFile
from repro.db.locks import EXCLUSIVE
from repro.db.snapshot import BootstrapSnapshot
from repro.db.transactions import ABORTED
from repro.db.tuples import INVALID_XID
from repro.errors import RecoveryError, TableError

RENAME_JOURNAL_TAG = "pg_rename_redo"
"""Root-device metadata tag holding the relation-swap redo journal.

The compacted rewrite at the end of a vacuum pass replaces the live
heap and index relations with freshly built copies.  Each individual
replacement is an atomic :meth:`~repro.devices.base.DeviceManager.
rename_relation`, but a heap and its indexes must swap *together* — a
crash between renames would leave an index holding TIDs into a heap
that no longer exists.  So the cleaner force-writes the journal (the
full list of renames) before the first swap and clears it after the
last; :func:`replay_rename_journal` re-runs any survivors when the
database is next opened.  Renames are idempotent (a missing source
with an existing destination is a completed rename), so replaying a
partially-applied journal is safe, as is crashing during the replay."""


def replay_rename_journal(switch, root_device) -> int:
    """Complete relation swaps interrupted by a crash.  Called from
    :meth:`repro.db.database.Database.open` before any relation is
    read.  Returns the number of journal entries processed."""
    raw = root_device.read_meta(RENAME_JOURNAL_TAG)
    if not raw:
        return 0
    try:
        entries = json.loads(raw.decode("ascii"))
    except ValueError as exc:
        raise RecoveryError(f"corrupt rename journal: {raw[:80]!r}") from exc
    for entry in entries:
        device = switch.get(entry["dev"])
        if device.relation_exists(entry["src"]):
            device.rename_relation(entry["src"], entry["dst"])
    root_device.sync_write_meta(RENAME_JOURNAL_TAG, b"")
    return len(entries)


@dataclass
class VacuumStats:
    """What one vacuum pass did."""

    table: str
    scanned: int = 0
    archived: int = 0
    expunged: int = 0        # aborted-insert garbage physically deleted
    kept: int = 0
    pages_before: int = 0
    pages_after: int = 0
    #: a keep_history=False request was overridden because another
    #: file holds by-reference pointers into this table — superseded
    #: versions were archived instead of discarded.
    history_pinned: bool = False


class VacuumCleaner:
    """Archives obsolete record versions out of live tables.

    With ``keep_history=False`` obsolete records are physically
    discarded instead of archived — "if the records are not saved
    elsewhere, some historical state of the database is lost … For
    files in which the user has no interest in maintaining history,
    POSTGRES can be instructed not to save old versions."
    """

    def __init__(self, db, archive_device: str | None = None,
                 keep_history: bool = True) -> None:
        self.db = db
        self.archive_device = archive_device
        self.keep_history = keep_history

    # -- classification ----------------------------------------------------

    def _classify(self, xmin: int, xmax: int) -> str:
        """'keep' (live or in-flight), 'archive' (superseded by a
        committed delete), or 'expunge' (inserted by an aborted
        transaction — never visible to anyone, ever)."""
        tm = self.db.tm
        if tm.state(xmin) == ABORTED:
            return "expunge"
        if xmax != INVALID_XID and tm.is_committed(xmax):
            return "archive"
        return "keep"

    # -- archive DDL -----------------------------------------------------------

    def _ensure_archive(self, info: TableInfo) -> tuple[HeapFile, list[tuple[tuple[str, ...], BTree]]]:
        """Create (if needed) and return the archive heap and its
        indexes, mirroring the live table's indexes.

        Creation runs in its own transaction, committed durably before
        the pass moves a single version: the archive's catalog row must
        already be on stable storage when the compacted swap destroys
        the originals.  Were it part of the vacuum transaction, a crash
        after the swap but before that transaction's commit record
        would leave the archived versions on disk under a catalog row
        recovery presumes aborted — unreachable by every lookup, and a
        dangling pointer for any by-reference clone pinned to them.  An
        empty archive left by a pass that crashed later is harmless:
        the next pass finds and reuses it."""
        name = f"a_{info.name}"
        archive_info = self.db.catalog.lookup_table(
            name, BootstrapSnapshot(self.db.tm), use_cache=False)
        devname = self.archive_device or info.devname
        if archive_info is None:
            ddl = self.db.begin()
            try:
                dev = self.db.switch.get(devname)
                oid = self.db.catalog.allocate_oid()
                dev.create_relation(name)
                self.db.catalog.add_table_row(ddl, oid, name, dev.name, "a",
                                              info.schema)
                for ix in info.indexes:
                    idxname = f"a_{ix.name}"
                    dev.create_relation(idxname)
                    BTree.create(self.db.buffers, dev.name, idxname,
                                 cpu=self.db.cpu)
                    self.db.catalog.add_index_row(
                        ddl, self.db.catalog.allocate_oid(), idxname, oid,
                        list(ix.keycols))
                ddl.wrote = True
                self.db.commit(ddl)
            except BaseException:
                self.db.abort(ddl)
                raise
            self.db.tm.flush_commits()  # group commit must not buffer DDL
            archive_info = self.db.catalog.lookup_table(
                name, BootstrapSnapshot(self.db.tm), use_cache=False)
        heap = HeapFile(self.db.buffers, archive_info.devname,
                        archive_info.name, archive_info.schema, cpu=self.db.cpu)
        btrees = [(ix.keycols,
                   BTree(self.db.buffers, archive_info.devname, ix.name,
                         cpu=self.db.cpu))
                  for ix in archive_info.indexes]
        return heap, btrees

    # -- the pass ------------------------------------------------------------------

    def vacuum_table(self, table_name: str) -> VacuumStats:
        """Archive obsolete versions of one table and compact it."""
        info = self.db.catalog.lookup_table(table_name,
                                            BootstrapSnapshot(self.db.tm),
                                            use_cache=False)
        if info is None:
            raise TableError(f"no table named {table_name!r}")
        if info.relkind != "h":
            raise TableError(f"cannot vacuum relation of kind {info.relkind!r}")

        tx = self.db.begin()
        self.db.locks.acquire(tx, ("rel", info.oid), EXCLUSIVE)
        stats = VacuumStats(table=table_name)
        try:
            heap = HeapFile(self.db.buffers, info.devname, info.name,
                            info.schema, cpu=self.db.cpu)
            stats.pages_before = heap.npages()
            keep_history = self.keep_history
            if not keep_history:
                # Another file may hold by-reference chunk pointers into
                # this table (see InversionFS._history_pinned): then
                # discarding superseded versions would leave dangling
                # references, so fall back to archiving them.
                check = getattr(self.db, "history_pin_check", None)
                if check is not None and check(table_name):
                    keep_history = True
                    stats.history_pinned = True
            if keep_history:
                archive_heap, archive_btrees = self._ensure_archive(info)
            else:
                archive_heap, archive_btrees = None, []
            schema = info.schema
            keycol_idx = {
                ix.keycols: [schema.column_index(c) for c in ix.keycols]
                for ix in info.indexes
            }

            keep: list[tuple[int, int, tuple]] = []
            for _tid, xmin, xmax, values in heap.scan_all_versions():
                stats.scanned += 1
                verdict = self._classify(xmin, xmax)
                if verdict == "archive":
                    if archive_heap is None:
                        # History discarded by request: the version is
                        # simply expunged.
                        stats.expunged += 1
                        continue
                    atid = archive_heap.insert_raw(xmin, xmax, values)
                    for keycols, btree in archive_btrees:
                        key = tuple(values[i] for i in keycol_idx[keycols])
                        btree.insert(tx, key, atid)
                    stats.archived += 1
                elif verdict == "expunge":
                    stats.expunged += 1
                else:
                    # Clear an xmax stamp left by an aborted deleter so
                    # the rewritten record is unambiguous.
                    if xmax != INVALID_XID and not self.db.tm.is_committed(xmax):
                        xmax = INVALID_XID
                    keep.append((xmin, xmax, values))
                    stats.kept += 1

            # Make the archive — and any group-commit-buffered status
            # records whose stamps the rewrite bakes in — durable
            # before destroying the originals.
            self.db.buffers.flush_all()
            self.db.tm.flush_commits()

            # Rewrite the live heap compacted, then rebuild its indexes.
            self._rewrite_heap(info, keep)
            stats.pages_after = HeapFile(self.db.buffers, info.devname,
                                         info.name, schema).npages()
            tx.wrote = True
            self.db.commit(tx)
            return stats
        except BaseException:
            self.db.abort(tx)
            raise

    def _rewrite_heap(self, info: TableInfo,
                      keep: list[tuple[int, int, tuple]]) -> None:
        """Replace the heap (and index) relations with compacted
        rebuilds.  TIDs change, so indexes are rebuilt from scratch.

        Crash-safe protocol: build ``v_<rel>`` side relations, force
        them to the medium, journal the swap, then atomically rename
        each side relation over its live name.  A crash before the
        journal write leaves the originals untouched (orphan side
        relations are reclaimed by the next vacuum); a crash after it
        is completed by :func:`replay_rename_journal` on reopen."""
        dev = self.db.switch.get(info.devname)
        buffers = self.db.buffers
        schema = info.schema
        side_of = {info.name: f"v_{info.name}"}
        for ix in info.indexes:
            side_of[ix.name] = f"v_{ix.name}"

        # Reclaim side relations orphaned by an earlier crashed pass.
        for side in side_of.values():
            if dev.relation_exists(side):
                buffers.drop_relation(info.devname, side)
                dev.drop_relation(side)

        dev.create_relation(side_of[info.name])
        heap = HeapFile(buffers, info.devname, side_of[info.name], schema,
                        cpu=self.db.cpu)
        new_tids = [heap.insert_raw(xmin, xmax, values)
                    for xmin, xmax, values in keep]
        for ix in info.indexes:
            dev.create_relation(side_of[ix.name])
            btree = BTree.create(buffers, info.devname, side_of[ix.name],
                                 cpu=self.db.cpu)
            col_idx = [schema.column_index(c) for c in ix.keycols]
            for tid, (_xmin, _xmax, values) in zip(new_tids, keep):
                key = tuple(values[i] for i in col_idx)
                btree.insert(None, key, tid)

        # The rebuilds must be durable before the journal names them.
        for side in side_of.values():
            buffers.flush_relation(info.devname, side)
        dev.flush()

        root = self.db.switch.get(self.db.catalog.root_device)
        root.sync_write_meta(RENAME_JOURNAL_TAG, json.dumps(
            [{"dev": info.devname, "src": side, "dst": live}
             for live, side in side_of.items()]).encode("ascii"))
        for live, side in side_of.items():
            buffers.drop_relation(info.devname, live)
            buffers.drop_relation(info.devname, side)
            dev.rename_relation(side, live)
        root.sync_write_meta(RENAME_JOURNAL_TAG, b"")
