"""The predicate rules system.

The paper leans on POSTGRES rules twice: "use of transaction processing
and the POSTGRES rules system can guarantee this consistency" (for
semantically rich files), and "we are exploring strategies for using
the POSTGRES predicate rules system to allow users and administrators
to define migration policies".

This is a practical subset: a rule watches one table for an event kind
(``append``/``replace``/``delete``) and fires when its POSTQUEL
qualification — evaluated over the new (or deleted) row bound to the
range variable ``new`` — is true.  Its action is either

- ``reject`` — refuse the write (an integrity constraint), or
- a registered Python callback (``do <registry key>``) invoked as
  ``callback(db, tx, table_name, event, row)`` — the hook migration
  policies and derived-data maintenance attach to.

Rules are catalog records (table ``pg_rules``), so defining one is
transactional and old rule sets are visible to time travel like
everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.db.snapshot import Snapshot
from repro.db.transactions import Transaction
from repro.db.tuples import Column, Schema
from repro.errors import QueryError, ReproError

PG_RULES_TABLE = "pg_rules"
PG_RULES_SCHEMA = Schema([
    Column("oid", "oid"),
    Column("rulename", "text"),
    Column("tablename", "text"),
    Column("event", "text"),          # 'append' | 'replace' | 'delete'
    Column("qualification", "text"),  # POSTQUEL expression over `new`
    Column("action", "text"),         # 'reject' or 'do <registry key>'
])

EVENTS = ("append", "replace", "delete")


class RuleViolation(ReproError):
    """An integrity rule rejected a write."""


#: registry of rule action callbacks ("dynamically loaded" like UDFs).
_ACTION_REGISTRY: dict[str, Callable] = {}


def register_action(key: str, fn: Callable) -> None:
    _ACTION_REGISTRY[key] = fn


@dataclass(frozen=True)
class Rule:
    oid: int
    name: str
    table: str
    event: str
    qualification: str
    action: str


class RuleSystem:
    """Definition and firing of predicate rules."""

    def __init__(self, db) -> None:
        self.db = db
        self._cache: dict[str, list[Rule]] | None = None

    # -- storage --------------------------------------------------------

    def _ensure_table(self) -> None:
        if not self.db.table_exists(PG_RULES_TABLE):
            tx = self.db.begin()
            try:
                self.db.create_table(tx, PG_RULES_TABLE, PG_RULES_SCHEMA)
                self.db.commit(tx)
            except BaseException:
                self.db.abort(tx)
                raise

    def invalidate(self) -> None:
        self._cache = None

    def _rules_for(self, table_name: str, snapshot: Snapshot) -> list[Rule]:
        if not self.db.table_exists(PG_RULES_TABLE):
            return []
        if self._cache is None:
            cache: dict[str, list[Rule]] = {}
            for _tid, row in self.db.table(PG_RULES_TABLE).scan(snapshot):
                rule = Rule(*row)
                cache.setdefault(rule.table, []).append(rule)
            self._cache = cache
        return self._cache.get(table_name, [])

    # -- definition --------------------------------------------------------

    def define_rule(self, tx: Transaction, name: str, table: str, event: str,
                    qualification: str, action: str) -> Rule:
        """``define rule name on <event> to <table> where <qual> do
        <action>``."""
        if event not in EVENTS:
            raise QueryError(f"unknown rule event {event!r}")
        if action != "reject" and not action.startswith("do "):
            raise QueryError(
                f"rule action must be 'reject' or 'do <key>', not {action!r}")
        self._ensure_table()
        # Validate the qualification parses now, not at first firing.
        from repro.db.query.parser import parse_expression
        parse_expression(qualification)
        oid = self.db.catalog.allocate_oid()
        self.db.table(PG_RULES_TABLE, tx).insert(
            tx, (oid, name, table, event, qualification, action))
        self.invalidate()
        tx.abort_hooks.append(self.invalidate)
        return Rule(oid, name, table, event, qualification, action)

    def drop_rule(self, tx: Transaction, name: str) -> bool:
        if not self.db.table_exists(PG_RULES_TABLE):
            return False
        table = self.db.table(PG_RULES_TABLE, tx)
        snapshot = self.db.snapshot(tx)
        for tid, row in table.scan(snapshot):
            if row[1] == name:
                table.delete(tx, tid)
                self.invalidate()
                tx.abort_hooks.append(self.invalidate)
                return True
        return False

    def list_rules(self, snapshot: Snapshot) -> list[Rule]:
        if not self.db.table_exists(PG_RULES_TABLE):
            return []
        return [Rule(*row) for _tid, row
                in self.db.table(PG_RULES_TABLE).scan(snapshot)]

    # -- firing --------------------------------------------------------------

    def fire(self, tx: Transaction, table_name: str, event: str,
             row: Sequence[object], schema) -> None:
        """Evaluate every matching rule against ``row`` (bound as the
        range variable ``new``); raise RuleViolation on reject actions,
        invoke callbacks otherwise."""
        if table_name == PG_RULES_TABLE:
            return  # rules do not govern themselves
        snapshot = self.db.snapshot(tx)
        rules = [r for r in self._rules_for(table_name, snapshot)
                 if r.event == event]
        if not rules:
            return
        from repro.db.query.engine import Evaluator, _Scope
        from repro.db.query.parser import parse_expression

        class _RowScope(_Scope):
            def __init__(self, table) -> None:
                self.name = "new"
                self.table = table
                self.snapshot = snapshot
                self.colnames = table.schema.column_names()

        scope = _RowScope(self.db.table(table_name))
        for rule in rules:
            evaluator = Evaluator(self.db, [scope], snapshot)
            evaluator.env["new"] = tuple(row)
            if not evaluator.eval(parse_expression(rule.qualification)):
                continue
            if rule.action == "reject":
                raise RuleViolation(
                    f"rule {rule.name!r} rejected {event} on "
                    f"{table_name}: {rule.qualification}")
            key = rule.action[3:].strip()
            callback = _ACTION_REGISTRY.get(key)
            if callback is None:
                raise QueryError(
                    f"rule {rule.name!r} names unregistered action {key!r}")
            callback(self.db, tx, table_name, event, tuple(row))
