"""The table abstraction: heap + indexes + locking + archive-aware reads.

A :class:`Table` is what the layers above (the query executor and the
Inversion file system) operate on.  It routes writes through the heap
and every B-tree index, takes two-phase locks on behalf of the calling
transaction, and — for historical (as-of) snapshots — transparently
merges the live heap with the vacuum cleaner's archive relation, so
time travel keeps working after obsolete records have been archived.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.db.btree import BTree
from repro.db.catalog import IndexInfo, TableInfo
from repro.db.heap import TID, TID_SIZE, HeapFile
from repro.db.locks import EXCLUSIVE
from repro.db.snapshot import AsOfSnapshot, IntervalSnapshot, Snapshot
from repro.db.transactions import Transaction
from repro.errors import TableError


class Table:
    """A handle on one table, bound to a :class:`repro.db.database.Database`."""

    def __init__(self, db, info: TableInfo) -> None:
        self.db = db
        self.info = info
        self.heap = HeapFile(db.buffers, info.devname, info.name, info.schema,
                             cpu=db.cpu)
        self._btrees: list[tuple[IndexInfo, BTree]] = [
            (ix, BTree(db.buffers, info.devname, ix.name, cpu=db.cpu))
            for ix in info.indexes
        ]

    # -- naming ------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.info.name

    @property
    def schema(self):
        return self.info.schema

    # -- locking -------------------------------------------------------------
    #
    # Writers take two-phase exclusive locks; readers rely on MVCC
    # snapshots and take no locks (a reader always sees a
    # transaction-consistent state regardless of concurrent writers).
    # The lock resource is the whole relation by default; the hot
    # shared metadata tables (naming, fileatt) pass a ``lock_key`` so
    # independent files do not serialize on them — the record-
    # granularity end of [GRAY76]'s granularity-of-locks spectrum.

    def _write_lock(self, tx: Transaction | None,
                    lock_key: object = None) -> None:
        if tx is None:
            return
        resource = ("rel", self.info.oid) if lock_key is None \
            else ("rel", self.info.oid, lock_key)
        self.db.locks.acquire(tx, resource, EXCLUSIVE)

    def lock_exclusive(self, tx: Transaction, lock_key: object = None) -> None:
        """Declare write intent up front.  Callers that buffer writes
        (the chunk store's coalescing) must take the exclusive lock at
        *write* time, not at flush time — acquiring nothing now and
        locking at commit invites deadlocks between flushing
        transactions."""
        self._write_lock(tx, lock_key)

    # -- key extraction ---------------------------------------------------------

    def _key_for(self, index: IndexInfo, values: Sequence[object]) -> tuple:
        idxs = [self.schema.column_index(c) for c in index.keycols]
        return tuple(values[i] for i in idxs)

    # -- write path -----------------------------------------------------------------

    def _fire_rules(self, tx: Transaction, event: str,
                    row: Sequence[object]) -> None:
        rules = self.db._rules
        if rules is not None:
            rules.fire(tx, self.info.name, event, row, self.schema)

    def insert(self, tx: Transaction, values: Sequence[object],
               lock_key: object = None) -> TID:
        self._write_lock(tx, lock_key)
        self._fire_rules(tx, "append", values)
        tid = self.heap.insert(tx, values)
        for index, btree in self._btrees:
            btree.insert(tx, self._key_for(index, values), tid)
        return tid

    def insert_many(self, tx: Transaction, rows: Sequence[Sequence[object]],
                    lock_key: object = None) -> list[TID]:
        """Insert a run of rows as one contiguous heap append (see
        :meth:`HeapFile.insert_many`); index maintenance is per row, as
        in :meth:`insert`."""
        rows = [tuple(r) for r in rows]
        self._write_lock(tx, lock_key)
        for values in rows:
            self._fire_rules(tx, "append", values)
        tids = self.heap.insert_many(tx, rows)
        for index, btree in self._btrees:
            for values, tid in zip(rows, tids):
                btree.insert(tx, self._key_for(index, values), tid)
        return tids

    def delete(self, tx: Transaction, tid: TID,
               lock_key: object = None) -> None:
        self._write_lock(tx, lock_key)
        if self.db._rules is not None:
            _xmin, _xmax, old = self.heap.fetch_raw(tid)
            self._fire_rules(tx, "delete", old)
        self.heap.delete(tx, tid)
        # Index entries stay: historical versions must remain findable
        # ("an index on all of the file's available data, including
        # both old and current blocks").

    def update(self, tx: Transaction, tid: TID,
               values: Sequence[object], lock_key: object = None) -> TID:
        self._write_lock(tx, lock_key)
        self._fire_rules(tx, "replace", values)
        self.heap.delete(tx, tid)
        new_tid = self.heap.insert(tx, values)
        for index, btree in self._btrees:
            btree.insert(tx, self._key_for(index, values), new_tid)
        return new_tid

    # -- read path --------------------------------------------------------------------

    def fetch(self, tid: TID, snapshot: Snapshot,
              tx: Transaction | None = None) -> tuple | None:
        return self.heap.fetch(tid, snapshot)

    def scan(self, snapshot: Snapshot,
             tx: Transaction | None = None) -> Iterator[tuple[TID, tuple]]:
        """Visible rows.  For historical snapshots the archive relation
        (if the vacuum cleaner has created one) is scanned too."""
        yield from self.heap.scan(snapshot)
        archive = self._archive_heap(snapshot)
        if archive is not None:
            yield from archive.scan(snapshot)

    def _archive_heap(self, snapshot: Snapshot) -> HeapFile | None:
        """The archive heap, only consulted for time-travel reads
        (point or interval)."""
        if not isinstance(snapshot, (AsOfSnapshot, IntervalSnapshot)):
            return None
        return self.db.archive_heap_for(self.info.name)

    # -- index access --------------------------------------------------------------------

    def _find_index(self, keycols: Sequence[str]) -> tuple[IndexInfo, BTree] | None:
        want = tuple(keycols)
        for index, btree in self._btrees:
            if index.keycols == want:
                return index, btree
        return None

    def has_index(self, keycols: Sequence[str]) -> bool:
        return self._find_index(keycols) is not None

    def index_eq(self, keycols: Sequence[str], key_values: Sequence[object],
                 snapshot: Snapshot, tx: Transaction | None = None
                 ) -> Iterator[tuple[TID, tuple]]:
        """Equality index scan: every visible row whose ``keycols``
        equal ``key_values``."""
        found = self._find_index(keycols)
        if found is None:
            raise TableError(
                f"no index on {self.name}({', '.join(keycols)})")
        _index, btree = found
        # Newest versions first: entries are keyed (key, TID) and TIDs
        # grow with insertion order, so the reversed scan finds the
        # live version without paying heap fetches for every superseded
        # one.  All versions of a key have distinct visibility windows,
        # so yield order does not change which rows qualify.
        for tid in reversed(btree.search(tuple(key_values))):
            row = self.heap.fetch(tid, snapshot)
            if row is not None:
                yield tid, row
        yield from self._archive_index_eq(keycols, key_values, snapshot)

    def _archive_index_eq(self, keycols, key_values,
                          snapshot) -> Iterator[tuple[TID, tuple]]:
        if not isinstance(snapshot, (AsOfSnapshot, IntervalSnapshot)):
            return
        pair = self.db.archive_index_for(self.info.name, tuple(keycols))
        if pair is None:
            return
        archive_heap, archive_btree = pair
        for tid in archive_btree.search(tuple(key_values)):
            row = archive_heap.fetch(tid, snapshot)
            if row is not None:
                yield tid, row

    def index_range(self, keycols: Sequence[str],
                    lo: Sequence[object] | None, hi: Sequence[object] | None,
                    snapshot: Snapshot, tx: Transaction | None = None
                    ) -> Iterator[tuple[TID, tuple]]:
        """Range index scan over [lo, hi] (inclusive; None = unbounded).
        For time-travel snapshots, archived versions in the range are
        yielded after the live ones, as :meth:`index_eq` does."""
        found = self._find_index(keycols)
        if found is None:
            raise TableError(
                f"no index on {self.name}({', '.join(keycols)})")
        _index, btree = found
        lo_t = tuple(lo) if lo is not None else None
        hi_t = tuple(hi) if hi is not None else None
        for _key, tid in btree.scan_values_range(lo_t, hi_t):
            row = self.heap.fetch(tid, snapshot)
            if row is not None:
                yield tid, row
        if isinstance(snapshot, (AsOfSnapshot, IntervalSnapshot)):
            pair = self.db.archive_index_for(self.info.name, tuple(keycols))
            if pair is not None:
                archive_heap, archive_btree = pair
                for _key, tid in archive_btree.scan_values_range(lo_t, hi_t):
                    row = archive_heap.fetch(tid, snapshot)
                    if row is not None:
                        yield tid, row

    def index_range_newest(self, keycols: Sequence[str],
                           lo: Sequence[object] | None,
                           hi: Sequence[object] | None,
                           snapshot: Snapshot, tx: Transaction | None = None
                           ) -> Iterator[tuple[TID, tuple]]:
        """For every distinct user key in [lo, hi], the one row
        :meth:`index_eq` on that key would yield *first* — the newest
        visible live version, falling back to the archive for
        time-travel snapshots — resolved with a single B-tree descent
        for the whole range instead of one descent per key.

        This is the sequential-read fast path: an N-chunk file read
        costs one index descent (two after a vacuum, for the archive
        index) rather than N."""
        found = self._find_index(keycols)
        if found is None:
            raise TableError(
                f"no index on {self.name}({', '.join(keycols)})")
        _index, btree = found
        lo_t = tuple(lo) if lo is not None else None
        hi_t = tuple(hi) if hi is not None else None
        # Entries are keyed (user key, TID); TIDs grow with insertion
        # order, so within one user key the last entry is the newest
        # version — group and resolve newest-first, as index_eq does.
        live: dict[bytes, list[TID]] = {}
        for key, tid in btree.scan_values_range(lo_t, hi_t):
            live.setdefault(key[:-TID_SIZE], []).append(tid)
        archive_heap = None
        archived: dict[bytes, list[TID]] = {}
        if isinstance(snapshot, (AsOfSnapshot, IntervalSnapshot)):
            pair = self.db.archive_index_for(self.info.name, tuple(keycols))
            if pair is not None:
                archive_heap, archive_btree = pair
                for key, tid in archive_btree.scan_values_range(lo_t, hi_t):
                    archived.setdefault(key[:-TID_SIZE], []).append(tid)
        # The newest version per key is almost always the one fetched;
        # pull those pages in with batched exact reads so the heap I/O
        # below is one contiguous transfer per run, not a page apiece.
        if live:
            self.heap.prefetch_pages(tids[-1].pageno for tids in live.values())
        for ukey in sorted(set(live) | set(archived)):
            emitted = False
            for tid in reversed(live.get(ukey, ())):
                row = self.heap.fetch(tid, snapshot)
                if row is not None:
                    yield tid, row
                    emitted = True
                    break
            if emitted or archive_heap is None:
                continue
            for tid in archived.get(ukey, ()):
                row = archive_heap.fetch(tid, snapshot)
                if row is not None:
                    yield tid, row
                    break

    # -- convenience -----------------------------------------------------------------------

    def row_count(self, snapshot: Snapshot) -> int:
        return sum(1 for __ in self.scan(snapshot))

    def column(self, name: str) -> int:
        return self.schema.column_index(name)
