"""The assembled database system.

:class:`Database` wires together the device switch, buffer cache,
transaction manager, lock manager, catalogs, and (lazily) the query
engine and vacuum cleaner.  It is the "POSTGRES data manager" process
of the paper: Inversion's routines are a thin layer of calls into this
object.

On-disk layout of a database directory::

    <path>/devices.json        device switch configuration
    <path>/<device>/...        one subdirectory per magnetic device
"""

from __future__ import annotations

import json
import os
from typing import Iterator, Sequence

from repro.db.buffer import DEFAULT_BUFFERS, BufferCache
from repro.db.btree import BTree
from repro.db.catalog import Catalog, TableInfo
from repro.db.heap import HeapFile
from repro.db.locks import LockManager
from repro.db.snapshot import AsOfSnapshot, BootstrapSnapshot, CurrentSnapshot, Snapshot
from repro.db.table import Table
from repro.db.transactions import Transaction, TransactionManager
from repro.db.tuples import Schema
from repro.devices.jukebox import SonyJukebox
from repro.devices.magnetic import MagneticDisk
from repro.devices.memdisk import MemDisk
from repro.devices.switch import DeviceSwitch
from repro.devices.tape import TapeJukebox
from repro.errors import CatalogError, TableError
from repro.obs import Observability
from repro.sim.clock import SimClock
from repro.sim.cpu import CpuModel, CpuParams, DECSYSTEM_5900

_DEVICES_FILE = "devices.json"
_DEVICE_TYPES = {
    "magnetic": "magnetic",
    "memdisk": "memdisk",
    "jukebox": "jukebox",
    "tape": "tape",
}

#: process-level registry of non-file-backed device instances, keyed by
#: (database path, device name).  Magnetic disks persist in real files;
#: NVRAM/jukebox/tape media are modelled in memory, so reopening a
#: database within one process must hand back the *same* media — their
#: contents are non-volatile by definition.
_DEVICE_REGISTRY: dict[tuple[str, str], object] = {}


class Database:
    """One POSTGRES database ≙ one Inversion mount point."""

    def __init__(self, path: str, clock: SimClock, buffer_pages: int,
                 cpu_params: CpuParams | None) -> None:
        self.path = path
        self.clock = clock
        self.cpu = CpuModel(clock, cpu_params or DECSYSTEM_5900)
        #: the session's observability bundle — metrics registry, tracer
        #: and per-transaction accountant (one per Database session, per
        #: the reset rule in :mod:`repro.obs.registry`).
        self.obs = Observability(clock)
        self.switch = DeviceSwitch()
        self.buffers = BufferCache(self.switch, capacity=buffer_pages, cpu=self.cpu,
                                   obs=self.obs)
        self.locks = LockManager()
        self.locks.obs = self.obs
        self.tm: TransactionManager | None = None
        self.catalog: Catalog | None = None
        #: the predicate rules system; None until first use so the
        #: table write path pays nothing when no rules exist.
        self._rules = None
        #: outcome listeners ``fn(xid, committed)`` fired at the
        #: visibility point of commit/abort/finish_prepared — in-memory
        #: bookkeeping (file data versions, committed-size hints) hangs
        #: off these so it moves in lock-step with what snapshots see.
        self._commit_listeners: list = []
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    @classmethod
    def create(cls, path: str, clock: SimClock | None = None,
               buffer_pages: int = DEFAULT_BUFFERS,
               cpu_params: CpuParams | None = None,
               group_commit_window: float = 0.0) -> "Database":
        """Create a new database rooted at ``path`` with one magnetic
        root device."""
        clock = clock or SimClock()
        if os.path.exists(os.path.join(path, _DEVICES_FILE)):
            raise CatalogError(f"database already exists at {path}")
        os.makedirs(path, exist_ok=True)
        db = cls(path, clock, buffer_pages, cpu_params)
        root = MagneticDisk("magnetic0", clock, os.path.join(path, "magnetic0"))
        db.switch.register(root, default=True)
        db._save_device_config([("magnetic0", "magnetic")])
        db.tm = TransactionManager(root, clock,
                                   group_commit_window=group_commit_window)
        db.tm.obs = db.obs
        db.obs.bind_database(db)
        db.catalog = Catalog(db.switch, db.buffers, "magnetic0", cpu=db.cpu)
        tx = db.begin()
        db.catalog.bootstrap_create(tx)
        db.commit(tx)
        return db

    @classmethod
    def open(cls, path: str, clock: SimClock | None = None,
             buffer_pages: int = DEFAULT_BUFFERS,
             cpu_params: CpuParams | None = None,
             group_commit_window: float = 0.0) -> "Database":
        """Open an existing database.  Recovery is implicit and
        essentially instantaneous: it consists of reading the
        transaction status file; updates in progress at a crash are
        invisible and therefore already rolled back."""
        clock = clock or SimClock()
        config_path = os.path.join(path, _DEVICES_FILE)
        if not os.path.exists(config_path):
            raise CatalogError(f"no database at {path}")
        with open(config_path, "r", encoding="utf-8") as f:
            config = json.load(f)
        db = cls(path, clock, buffer_pages, cpu_params)
        for entry in config["devices"]:
            db._instantiate_device(entry["name"], entry["type"],
                                   default=entry["name"] == config["root"])
        root = db.switch.get(config["root"])
        # Complete any relation swap (vacuum's compacted rewrite) that a
        # crash interrupted, before anything reads those relations.
        from repro.db.vacuum import replay_rename_journal
        replay_rename_journal(db.switch, root)
        db.tm = TransactionManager(root, clock,
                                   group_commit_window=group_commit_window)
        db.tm.obs = db.obs
        db.obs.bind_database(db)
        # Resume simulated time beyond all recorded history, so that
        # post-reopen commits never sort before pre-crash ones.
        resume_at = db.tm.max_recorded_time()
        if clock.now() < resume_at:
            clock.advance(resume_at - clock.now() + 1e-9)
        db.catalog = Catalog(db.switch, db.buffers, config["root"], cpu=db.cpu)
        db.catalog._load_oid_hwm()
        return db

    def _instantiate_device(self, name: str, kind: str, default: bool) -> None:
        if kind == "magnetic":
            # Backed by real files: always safe to rebuild from disk.
            dev = MagneticDisk(name, self.clock, os.path.join(self.path, name))
        else:
            key = (os.path.abspath(self.path), name)
            dev = _DEVICE_REGISTRY.get(key)
            if dev is None:
                if kind == "memdisk":
                    dev = MemDisk(name, self.clock)
                elif kind == "jukebox":
                    dev = SonyJukebox(name, self.clock)
                elif kind == "tape":
                    dev = TapeJukebox(name, self.clock)
                else:
                    raise CatalogError(f"unknown device type {kind!r}")
                _DEVICE_REGISTRY[key] = dev
            else:
                dev.rebind_clock(self.clock)
        self.switch.register(dev, default=default)

    def _save_device_config(self, devices: list[tuple[str, str]]) -> None:
        config = {
            "root": devices[0][0] if devices else None,
            "devices": [{"name": n, "type": t} for n, t in devices],
        }
        existing = self._load_device_config()
        if existing:
            config["root"] = existing["root"]
            known = {d["name"] for d in existing["devices"]}
            config["devices"] = existing["devices"] + [
                d for d in config["devices"] if d["name"] not in known]
        with open(os.path.join(self.path, _DEVICES_FILE), "w", encoding="utf-8") as f:
            json.dump(config, f, indent=2)

    def _load_device_config(self) -> dict | None:
        path = os.path.join(self.path, _DEVICES_FILE)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)

    def add_device(self, name: str, kind: str, device=None) -> None:
        """Register a new storage device (the administrator writing a
        device-manager-switch entry).  ``device`` may be a pre-built
        manager; otherwise one is constructed with default parameters."""
        if kind not in _DEVICE_TYPES:
            raise CatalogError(f"unknown device type {kind!r}")
        if device is not None:
            self.switch.register(device)
            if kind != "magnetic":
                _DEVICE_REGISTRY[(os.path.abspath(self.path), name)] = device
        else:
            self._instantiate_device(name, kind, default=False)
        self.obs.bind_device(self.switch.get(name))
        self._save_device_config([(name, kind)])

    def close(self) -> None:
        if not self._closed:
            self.buffers.flush_all()
            if self.tm is not None:
                # Any queued group-commit records become durable now;
                # their data pages were forced when they committed.
                self.tm.flush_commits()
            self.switch.close_all()
            self._closed = True

    # -- transactions -------------------------------------------------------

    def add_commit_listener(self, fn) -> None:
        """Register ``fn(xid, committed)`` to run when a transaction's
        outcome becomes visible (after the status write, before its
        locks are released — so waiters resumed by the release already
        see the listener's effects)."""
        self._commit_listeners.append(fn)

    def _notify_outcome(self, xid: int, committed: bool) -> None:
        for fn in self._commit_listeners:
            fn(xid, committed)

    def begin(self) -> Transaction:
        tx = self.tm.begin()
        tx._tm = self.tm  # lets catalog helpers build snapshots
        tx._pending_drops = []
        # The xid becomes this thread's current transaction for cost
        # attribution; it stays current through commit so the
        # commit-time page force and status append land on it.
        self.obs.tx.begin(tx.xid)
        return tx

    def commit(self, tx: Transaction) -> None:
        """Force the transaction's data, then its commit record.  The
        no-overwrite manager has no WAL: durability of a commit is
        'dirty pages on stable storage, then one status-file append'."""
        tx.require_active()
        try:
            if tx.wrote:
                self.buffers.flush_all()
            self.tm.commit(tx)
            self._notify_outcome(tx.xid, True)
            for dev_name, relname in getattr(tx, "_pending_drops", []):
                self.buffers.drop_relation(dev_name, relname)
                self.switch.get(dev_name).drop_relation(relname)
            self.locks.release_all(tx)
        finally:
            self.obs.tx.end(tx.xid)

    def abort(self, tx: Transaction) -> None:
        """Abort: one status append; the transaction's records are
        simply never visible again.  Nothing is undone physically."""
        try:
            self.tm.abort(tx)
            self._notify_outcome(tx.xid, False)
            self.locks.release_all(tx)
        finally:
            self.obs.tx.end(tx.xid)

    def prepare(self, tx: Transaction, gid: str) -> None:
        """2PC phase one: force the transaction's dirty pages, then its
        ``P`` record.  Locks stay held and the transaction stays
        charge-attributable until :meth:`finish_prepared`."""
        tx.require_active()
        if tx.wrote:
            self.buffers.flush_all()
        self.tm.prepare(tx, gid)

    def finish_prepared(self, tx: Transaction, commit: bool) -> None:
        """2PC phase two: apply the coordinator's decision to a live
        prepared transaction, then release its locks."""
        try:
            self.tm.resolve_prepared(tx, commit)
            self._notify_outcome(tx.xid, commit)
            if commit:
                for dev_name, relname in getattr(tx, "_pending_drops", []):
                    self.buffers.drop_relation(dev_name, relname)
                    self.switch.get(dev_name).drop_relation(relname)
            self.locks.release_all(tx)
        finally:
            self.obs.tx.end(tx.xid)

    def snapshot(self, tx: Transaction) -> CurrentSnapshot:
        return CurrentSnapshot(self.tm, tx.xid)

    def asof(self, when: float) -> AsOfSnapshot:
        """A time-travel snapshot: the database exactly as it was at
        simulated time ``when``."""
        return AsOfSnapshot(self.tm, when)

    def _read_snapshot(self, tx: Transaction | None) -> Snapshot:
        if tx is not None:
            return self.snapshot(tx)
        return BootstrapSnapshot(self.tm)

    # -- DDL ---------------------------------------------------------------------

    def create_table(self, tx: Transaction, name: str, schema: Schema,
                     device: str | None = None,
                     indexes: Sequence[Sequence[str]] = ()) -> Table:
        """Create a table (optionally with B-tree indexes) on ``device``
        (None → the default device).  Fully transactional: an abort
        makes the table vanish."""
        from repro.db.locks import EXCLUSIVE
        self.locks.acquire(tx, ("ddl",), EXCLUSIVE)
        snapshot = self.snapshot(tx)
        if self.catalog.lookup_table(name, snapshot, use_cache=False) is not None:
            raise TableError(f"table {name!r} already exists")
        dev = self.switch.get(device)
        oid = self.catalog.allocate_oid()
        self._reclaim_orphan(dev, name)
        dev.create_relation(name)
        self.catalog.add_table_row(tx, oid, name, dev.name, "h", schema)
        for keycols in indexes:
            self._create_index_on(tx, oid, name, dev.name, schema, list(keycols))
        info = self.catalog.lookup_table(name, snapshot, use_cache=False)
        return Table(self, info)

    def create_index(self, tx: Transaction, table_name: str,
                     keycols: Sequence[str], name: str | None = None) -> None:
        """Add a B-tree index — "indices may be defined to make file
        system operations run faster, at the user's discretion"."""
        snapshot = self.snapshot(tx)
        info = self._require_table(table_name, snapshot)
        self._create_index_on(tx, info.oid, info.name, info.devname,
                              info.schema, list(keycols), name)

    def _reclaim_orphan(self, dev, relname: str) -> None:
        """Drop a physical relation left behind by an aborted DDL
        transaction (the catalog row never committed, but the file
        exists).  Only safe when no committed catalog row names it."""
        if not dev.relation_exists(relname):
            return
        from repro.db.snapshot import BootstrapSnapshot
        snapshot = BootstrapSnapshot(self.tm)
        info = self.catalog.lookup_table(relname, snapshot, use_cache=False)
        if info is None and not self.catalog.index_exists(relname, snapshot):
            self.buffers.drop_relation(dev.name, relname)
            dev.drop_relation(relname)

    def _create_index_on(self, tx: Transaction, tableoid: int, table_name: str,
                         devname: str, schema: Schema, keycols: list[str],
                         name: str | None = None) -> None:
        for col in keycols:
            schema.column_index(col)  # validates
        idxname = name or f"{table_name}_{'_'.join(keycols)}_idx"
        dev = self.switch.get(devname)
        self._reclaim_orphan(dev, idxname)
        dev.create_relation(idxname)
        btree = BTree.create(self.buffers, devname, idxname, cpu=self.cpu)
        oid = self.catalog.allocate_oid()
        self.catalog.add_index_row(tx, oid, idxname, tableoid, keycols)
        # Populate with every existing record version.
        heap = HeapFile(self.buffers, devname, table_name, schema, cpu=self.cpu)
        col_idx = [schema.column_index(c) for c in keycols]
        for tid, _xmin, _xmax, values in heap.scan_all_versions():
            btree.insert(tx, tuple(values[i] for i in col_idx), tid)

    def drop_table(self, tx: Transaction, name: str) -> None:
        """Drop a table and its indexes.  Physical storage is released
        at commit (an abort leaves everything intact)."""
        snapshot = self.snapshot(tx)
        info = self._require_table(name, snapshot)
        self.catalog.remove_table_row(tx, name, snapshot)
        removed = self.catalog.remove_index_rows(tx, info.oid, snapshot)
        tx._pending_drops.append((info.devname, info.name))
        for ix in removed:
            tx._pending_drops.append((info.devname, ix.name))

    # -- table access ------------------------------------------------------------------

    def _require_table(self, name: str, snapshot: Snapshot) -> TableInfo:
        info = self.catalog.lookup_table(name, snapshot)
        if info is None:
            raise TableError(f"no table named {name!r}")
        return info

    def table(self, name: str, tx: Transaction | None = None) -> Table:
        """A handle on table ``name`` (visibility per ``tx``, or any
        committed state when ``tx`` is None)."""
        return Table(self, self._require_table(name, self._read_snapshot(tx)))

    def table_exists(self, name: str, tx: Transaction | None = None) -> bool:
        return self.catalog.lookup_table(name, self._read_snapshot(tx)) is not None

    def list_tables(self, tx: Transaction | None = None) -> list[str]:
        return [t.name for t in self.catalog.list_tables(self._read_snapshot(tx))]

    # -- archive plumbing (vacuum support) ------------------------------------------------

    def archive_heap_for(self, table_name: str) -> HeapFile | None:
        info = self.catalog.lookup_table(f"a_{table_name}",
                                         BootstrapSnapshot(self.tm))
        if info is None or info.relkind != "a":
            return None
        return HeapFile(self.buffers, info.devname, info.name, info.schema,
                        cpu=self.cpu)

    def archive_index_for(self, table_name: str, keycols: tuple[str, ...]
                          ) -> tuple[HeapFile, BTree] | None:
        info = self.catalog.lookup_table(f"a_{table_name}",
                                         BootstrapSnapshot(self.tm))
        if info is None:
            return None
        for ix in info.indexes:
            if ix.keycols == keycols:
                heap = HeapFile(self.buffers, info.devname, info.name,
                                info.schema, cpu=self.cpu)
                return heap, BTree(self.buffers, info.devname, ix.name, cpu=self.cpu)
        return None

    # -- functions and types ----------------------------------------------------------------

    @property
    def rules(self):
        """The predicate rules system (created on first use)."""
        if self._rules is None:
            from repro.db.rules import RuleSystem
            self._rules = RuleSystem(self)
        return self._rules

    @property
    def funcs(self):
        """The function manager (lazy import avoids a cycle)."""
        from repro.db.funcmgr import FunctionManager
        return FunctionManager(self)

    def define_type(self, tx: Transaction, name: str, description: str = ""):
        """``define type`` — extend the type system."""
        return self.catalog.define_type(tx, name, description)

    # -- query language -------------------------------------------------------------------

    def execute(self, tx: Transaction, query: str) -> list[tuple]:
        """Run a POSTQUEL query; returns result rows (empty for DML/DDL)."""
        from repro.db.query.engine import QueryEngine
        return QueryEngine(self).execute(tx, query)

    # -- maintenance -------------------------------------------------------------------------

    def vacuum(self, table_name: str, archive_device: str | None = None,
               keep_history: bool = True):
        """Run the vacuum cleaner on one table; returns VacuumStats.
        ``keep_history=False`` discards obsolete versions instead of
        archiving them ("POSTGRES can be instructed not to save old
        versions")."""
        from repro.db.vacuum import VacuumCleaner
        return VacuumCleaner(self, archive_device,
                             keep_history=keep_history).vacuum_table(table_name)

    def flush_caches(self) -> None:
        """Write back and drop every cached page, and forget disk head
        positions — the benchmark's 'all caches were flushed before
        each test'."""
        self.buffers.invalidate_all(write_dirty=True)
        if self.tm is not None:
            self.tm.flush_commits()
        for dev in self.switch:
            disk = getattr(dev, "disk", None)
            if disk is not None:
                disk.reset_head()
        self.catalog.invalidate_cache()

    def simulate_crash(self) -> None:
        """Power-failure model: volatile caches vanish, media survive.
        The database object is unusable afterwards; reopen with
        :meth:`open`."""
        self.buffers.invalidate_all(write_dirty=False)
        self.switch.simulate_crash()
        self._closed = True

    def wrap_devices(self, wrapper) -> list:
        """Interpose ``wrapper(device)`` proxies over every registered
        device manager (the fault-injection seam used by
        :mod:`repro.testkit`).  The transaction manager's direct handle
        on the root device is rebound too, so status-file forces pass
        through the proxy — without that, commit records would bypass
        the very write counting a crash-schedule explorer relies on."""
        proxies = [self.switch.wrap(name, wrapper)
                   for name in self.switch.names()]
        if self.tm is not None:
            self.tm.rebind_device(self.switch.get(self.switch.default_name))
        return proxies

    def unwrap_devices(self) -> None:
        """Undo :meth:`wrap_devices`."""
        for name in self.switch.names():
            self.switch.unwrap(name)
        if self.tm is not None:
            self.tm.rebind_device(self.switch.get(self.switch.default_name))

    # -- introspection ---------------------------------------------------------------------------

    def iter_table_rows(self, name: str, tx: Transaction | None = None
                        ) -> Iterator[tuple]:
        table = self.table(name, tx)
        for _tid, row in table.scan(self._read_snapshot(tx), tx):
            yield row
