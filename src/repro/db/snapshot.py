"""Visibility rules: the current view and time travel.

Every stored record carries ``(xmin, xmax)``.  A snapshot decides, from
those two xids and the transaction status file, whether the record is
part of the database state being viewed:

- :class:`CurrentSnapshot` — the view a running transaction sees: rows
  inserted by committed transactions (or by itself) and not deleted by
  a committed transaction (or by itself).
- :class:`AsOfSnapshot` — the paper's fine-grained time travel: "All
  transactions that had committed as of that time will be visible, so
  the file system state will be exactly the same as it was at that
  moment."  A record is visible as of time T iff its inserter committed
  at or before T and its deleter (if any) had not committed by T.

Because the no-overwrite manager keeps superseded records in place
(until the vacuum cleaner archives them), time travel needs no extra
data structures — only these predicates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.db.transactions import TransactionManager
from repro.db.tuples import INVALID_XID


class Snapshot(ABC):
    """Decides record visibility from an (xmin, xmax) header."""

    @abstractmethod
    def is_visible(self, xmin: int, xmax: int) -> bool: ...


class CurrentSnapshot(Snapshot):
    """The view of transaction ``xid`` over current state."""

    __slots__ = ("_tm", "_xid")

    def __init__(self, tm: TransactionManager, xid: int) -> None:
        self._tm = tm
        self._xid = xid

    def is_visible(self, xmin: int, xmax: int) -> bool:
        # Was the record inserted, as far as we are concerned?
        if xmin != self._xid and not self._tm.is_committed(xmin):
            return False
        # Has it been deleted?
        if xmax == INVALID_XID:
            return True
        if xmax == self._xid:
            return False  # we deleted it ourselves
        return not self._tm.is_committed(xmax)

    def __repr__(self) -> str:  # pragma: no cover
        return f"CurrentSnapshot(xid={self._xid})"


class AsOfSnapshot(Snapshot):
    """The historical view as of simulated time ``when``."""

    __slots__ = ("_tm", "when")

    def __init__(self, tm: TransactionManager, when: float) -> None:
        self._tm = tm
        self.when = float(when)

    def is_visible(self, xmin: int, xmax: int) -> bool:
        t_in = self._tm.commit_time(xmin)
        if t_in is None or t_in > self.when:
            return False
        if xmax == INVALID_XID:
            return True
        t_out = self._tm.commit_time(xmax)
        return t_out is None or t_out > self.when

    def __repr__(self) -> str:  # pragma: no cover
        return f"AsOfSnapshot(when={self.when})"


class IntervalSnapshot(Snapshot):
    """POSTQUEL's two-time form ``table[T1, T2]``: every record version
    that was part of some committed state at any instant in [T1, T2].
    Unlike the point snapshots, this can yield *several* versions of
    one logical record — that is the point: it answers "what did this
    look like over the period"."""

    __slots__ = ("_tm", "t1", "t2")

    def __init__(self, tm: TransactionManager, t1: float, t2: float) -> None:
        if t2 < t1:
            t1, t2 = t2, t1
        self._tm = tm
        self.t1 = float(t1)
        self.t2 = float(t2)

    def is_visible(self, xmin: int, xmax: int) -> bool:
        t_in = self._tm.commit_time(xmin)
        if t_in is None or t_in > self.t2:
            return False
        if xmax == INVALID_XID:
            return True
        t_out = self._tm.commit_time(xmax)
        return t_out is None or t_out > self.t1

    def __repr__(self) -> str:  # pragma: no cover
        return f"IntervalSnapshot({self.t1}, {self.t2})"


class BootstrapSnapshot(Snapshot):
    """Sees every committed record; used while opening a database
    before any transaction exists (catalog reads during recovery)."""

    __slots__ = ("_tm",)

    def __init__(self, tm: TransactionManager) -> None:
        self._tm = tm

    def is_visible(self, xmin: int, xmax: int) -> bool:
        if not self._tm.is_committed(xmin):
            return False
        return xmax == INVALID_XID or not self._tm.is_committed(xmax)
