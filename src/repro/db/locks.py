"""Two-phase locking with deadlock detection.

"A standard database two-phase locking protocol [GRAY76] allows
concurrent access to files while preventing simultaneous changes from
interfering with one another."  Locks are table-granularity (POSTGRES
4.0.1 locked relations), shared or exclusive, held until commit or
abort.  Waiters are tracked in a waits-for graph; when acquiring a lock
would close a cycle, the requester is chosen as the deadlock victim and
its transaction raises :class:`DeadlockError`.

Queueing is FIFO without barging: a new request conflicts not only
with incompatible *holders* but with incompatible waiters queued ahead
of it, so a stream of shared requests cannot starve a parked exclusive
waiter.  The one exception is the S→X upgrade, which considers only
holders — an upgrader waiting behind a queued X waiter that is itself
waiting on the upgrader's S hold would be a queueing-induced deadlock,
not a data one.  Two upgraders still deadlock honestly (each waits on
the other's S hold) and the waits-for cycle check picks exactly one
victim.

*How* a transaction waits is pluggable (:attr:`LockManager.
wait_strategy`): the default parks the calling thread on a condition
variable and measures wall seconds (lock waits are thread scheduling,
not simulated I/O); :class:`SimClockWaitStrategy` instead advances the
simulated clock in quanta, so waits and timeouts happen in simulated
time; and the multi-session scheduler (:mod:`repro.sched`) installs a
strategy that parks the waiting session and runs other sessions'
requests until the lock frees — which is what finally lets lock waits
advance simulated time and land in per-xid accounting.
"""

from __future__ import annotations

import threading
import time as _time
from dataclasses import dataclass, field
from typing import Hashable

from repro.db.transactions import Transaction
from repro.errors import DeadlockError, LockTimeoutError
from repro.obs.registry import MetricSpec

SHARED = "S"
EXCLUSIVE = "X"

METRICS = (
    MetricSpec("lock.waits", "counter", "waits",
               "Blocking lock acquisitions (counted once per acquire "
               "that had to wait, however many wait rounds it took).",
               "repro.db.locks"),
    MetricSpec("lock.wait_seconds", "histogram", "seconds",
               "Seconds per blocking lock acquisition — wall seconds "
               "under the default thread wait strategy, simulated "
               "seconds under a sim-clock strategy (the multi-session "
               "scheduler's parked waits).",
               "repro.db.locks"),
    MetricSpec("lock.deadlocks", "counter", "txns",
               "Transactions chosen as deadlock victims (the waits-for "
               "graph closed a cycle through them).",
               "repro.db.locks"),
    MetricSpec("lock.timeouts", "counter", "txns",
               "Lock acquisitions abandoned because the configured "
               "timeout elapsed before the lock was granted.",
               "repro.db.locks"),
)


@dataclass
class LockStats:
    """Session-lifetime contention counters (the metric families above
    mirror the obs-pushed series; these plain integers stay readable
    without an Observability bundle, e.g. from a bare unit test)."""

    waits: int = 0
    deadlocks: int = 0
    timeouts: int = 0


@dataclass
class _Waiter:
    """One queued request; identity matters (the queue may hold several
    entries for one xid only transiently, never for the same request)."""

    xid: int
    mode: str


@dataclass
class _LockState:
    """Per-resource lock bookkeeping."""

    holders: dict[int, str] = field(default_factory=dict)  # xid -> mode
    waiters: list[_Waiter] = field(default_factory=list)   # FIFO queue


@dataclass(frozen=True)
class LockHandle:
    """Recorded on the transaction for release at commit/abort."""

    resource: Hashable
    mode: str


def _compatible(held: str, requested: str) -> bool:
    return held == SHARED and requested == SHARED


class ThreadWaitStrategy:
    """The default wait path: park the calling thread on the lock
    manager's condition variable, timeout in wall-clock seconds."""

    def start(self, lm: "LockManager", xid: int, resource: Hashable,
              mode: str) -> dict:
        now = _time.monotonic()
        return {"start": now, "deadline": now + lm.timeout_s}

    def wait_round(self, lm: "LockManager", ctx: dict) -> bool:
        """One bounded wait; True → re-check blockers, False → timed
        out.  Called (and returns) holding ``lm._cond``."""
        remaining = ctx["deadline"] - _time.monotonic()
        if remaining <= 0:
            return False
        lm._cond.wait(timeout=remaining)
        return _time.monotonic() < ctx["deadline"]

    def finish(self, lm: "LockManager", ctx: dict, xid: int) -> float:
        """Wait is over (granted or failed); returns elapsed seconds."""
        return _time.monotonic() - ctx["start"]


class SimClockWaitStrategy:
    """Sim-clock wait path for single-threaded deterministic runs: each
    wait round advances the simulated clock by ``quantum``, and the
    timeout is measured in simulated seconds.  With no other thread to
    release the lock this alone can only time out deterministically;
    the multi-session scheduler subclasses the idea and runs *other
    sessions* during each round instead of merely burning quanta."""

    def __init__(self, clock, quantum: float = 1e-4) -> None:
        self.clock = clock
        self.quantum = quantum

    def start(self, lm: "LockManager", xid: int, resource: Hashable,
              mode: str) -> dict:
        now = self.clock.now()
        return {"start": now, "deadline": now + lm.timeout_s}

    def wait_round(self, lm: "LockManager", ctx: dict) -> bool:
        if self.clock.now() >= ctx["deadline"]:
            return False
        self.clock.advance(self.quantum)
        return self.clock.now() < ctx["deadline"]

    def finish(self, lm: "LockManager", ctx: dict, xid: int) -> float:
        return self.clock.now() - ctx["start"]


class LockManager:
    """Table-level S/X lock manager with waits-for deadlock detection
    and FIFO (no-barging) queueing."""

    def __init__(self, timeout_s: float = 10.0) -> None:
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self._locks: dict[Hashable, _LockState] = {}
        # waits-for edges: xid -> set of xids it waits on
        self._waits_for: dict[int, set[int]] = {}
        self.timeout_s = timeout_s
        self.stats = LockStats()
        #: how blocked acquisitions wait (see module docstring).
        self.wait_strategy = ThreadWaitStrategy()
        #: the session's Observability bundle (set by Database).
        self.obs = None

    # -- acquisition -------------------------------------------------------

    def acquire(self, tx: Transaction, resource: Hashable,
                mode: str = SHARED) -> None:
        """Acquire ``mode`` on ``resource`` for ``tx``, blocking as
        needed.  Re-acquisition and S→X upgrade are supported."""
        if mode not in (SHARED, EXCLUSIVE):
            raise ValueError(f"bad lock mode {mode!r}")
        with self._cond:
            state = self._locks.setdefault(resource, _LockState())
            held = state.holders.get(tx.xid)
            if held == EXCLUSIVE or held == mode:
                return  # already strong enough
            upgrading = held == SHARED
            entry = _Waiter(tx.xid, mode)
            queued = False
            ctx = None
            # Waiters whose sessions are suspended beneath the caller on
            # the cooperative scheduler's stack cannot acquire until
            # control unwinds *through* the caller — queueing behind
            # them would be a stack-induced false dependency, so the
            # strategy may exempt them from the no-barge rule (empty
            # under real threads, where every waiter can always run).
            suspended = getattr(self.wait_strategy, "suspended_xids", None)
            try:
                while True:
                    exempt = suspended() if suspended is not None else ()
                    blockers = self._blockers(state, tx.xid, mode,
                                              upgrading, entry, exempt)
                    if not blockers:
                        break
                    # Would waiting close a cycle in the waits-for graph?
                    self._waits_for[tx.xid] = blockers
                    if self._cycle_from(tx.xid):
                        self.stats.deadlocks += 1
                        if self.obs is not None:
                            self.obs.lock_deadlock(tx.xid)
                        raise DeadlockError(
                            f"transaction {tx.xid} chosen as deadlock "
                            f"victim requesting {mode} on {resource!r} "
                            f"held by {self._holders_text(state)}; "
                            f"waiting for {sorted(blockers)}")
                    if not queued:
                        state.waiters.append(entry)
                        queued = True
                    if ctx is None:
                        ctx = self.wait_strategy.start(self, tx.xid,
                                                       resource, mode)
                    if not self.wait_strategy.wait_round(self, ctx):
                        # Last look before giving up: a sim-clock
                        # strategy may have advanced straight to the
                        # deadline while the release that frees us
                        # happened on the way.
                        exempt = (suspended() if suspended is not None
                                  else ())
                        if not self._blockers(state, tx.xid, mode,
                                              upgrading, entry, exempt):
                            break
                        self.stats.timeouts += 1
                        if self.obs is not None:
                            self.obs.lock_timeout(tx.xid)
                        raise LockTimeoutError(
                            f"transaction {tx.xid} timed out waiting for "
                            f"{mode} on {resource!r} held by "
                            f"{self._holders_text(state)} after "
                            f"{self.timeout_s}s")
            finally:
                if queued:
                    try:
                        state.waiters.remove(entry)
                    except ValueError:
                        pass
                self._waits_for.pop(tx.xid, None)
                if ctx is not None:
                    elapsed = self.wait_strategy.finish(self, ctx, tx.xid)
                    self.stats.waits += 1
                    if self.obs is not None:
                        self.obs.lock_wait(tx.xid, elapsed)
                    # Our departure may unblock queued requests that
                    # were ordered behind this entry.
                    self._cond.notify_all()
            if mode == EXCLUSIVE:
                state.holders[tx.xid] = EXCLUSIVE
            else:
                state.holders.setdefault(tx.xid, SHARED)
            tx.held_locks.append(LockHandle(resource, state.holders[tx.xid]))

    def _holders_text(self, state: _LockState) -> str:
        """Current holders as ``{xid: mode}`` for actionable error
        messages (retry/backoff logs name the transactions to wait out)."""
        return ("{" + ", ".join(f"{xid}:{m}"
                                for xid, m in sorted(state.holders.items()))
                + "}") if state.holders else "{}"

    def _blockers(self, state: _LockState, xid: int, mode: str,
                  upgrading: bool, entry: _Waiter,
                  exempt=()) -> set[int]:
        """Transactions this request must wait for: incompatible
        holders, plus — FIFO, no barging — incompatible waiters queued
        ahead of it.  An S→X upgrade considers only holders (see module
        docstring); ``exempt`` waiter xids (stack-suspended sessions
        under the cooperative scheduler) are skipped too."""
        blockers = set()
        for holder, held_mode in state.holders.items():
            if holder == xid:
                continue
            if mode == EXCLUSIVE or held_mode == EXCLUSIVE:
                blockers.add(holder)
        if not upgrading:
            for waiter in state.waiters:
                if waiter is entry:
                    break
                if waiter.xid == xid or waiter.xid in exempt:
                    continue
                if mode == EXCLUSIVE or waiter.mode == EXCLUSIVE:
                    blockers.add(waiter.xid)
        return blockers

    def _cycle_from(self, start: int) -> bool:
        """DFS over the waits-for graph looking for a cycle through
        ``start``."""
        stack = list(self._waits_for.get(start, ()))
        seen = set()
        while stack:
            node = stack.pop()
            if node == start:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._waits_for.get(node, ()))
        return False

    # -- release -------------------------------------------------------------

    def release_all(self, tx: Transaction) -> None:
        """Release every lock ``tx`` holds — the shrink phase of 2PL,
        run only at commit/abort."""
        with self._cond:
            for handle in tx.held_locks:
                state = self._locks.get(handle.resource)
                if state is not None:
                    state.holders.pop(tx.xid, None)
                    if not state.holders and not state.waiters:
                        del self._locks[handle.resource]
            tx.held_locks.clear()
            self._waits_for.pop(tx.xid, None)
            self._cond.notify_all()

    # -- introspection ----------------------------------------------------------

    def holders(self, resource: Hashable) -> dict[int, str]:
        with self._mutex:
            state = self._locks.get(resource)
            return dict(state.holders) if state else {}

    def waiter_xids(self, resource: Hashable) -> list[int]:
        """Queued waiter xids in FIFO order (introspection for tests
        and the scheduler's fairness report)."""
        with self._mutex:
            state = self._locks.get(resource)
            return [w.xid for w in state.waiters] if state else []
