"""Two-phase locking with deadlock detection.

"A standard database two-phase locking protocol [GRAY76] allows
concurrent access to files while preventing simultaneous changes from
interfering with one another."  Locks are table-granularity (POSTGRES
4.0.1 locked relations), shared or exclusive, held until commit or
abort.  Waiters are tracked in a waits-for graph; when acquiring a lock
would close a cycle, the requester is chosen as the deadlock victim and
its transaction raises :class:`DeadlockError`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Hashable

from repro.db.transactions import Transaction
from repro.errors import DeadlockError, LockTimeoutError
from repro.obs.registry import MetricSpec

SHARED = "S"
EXCLUSIVE = "X"

METRICS = (
    MetricSpec("lock.waits", "counter", "waits",
               "Times a transaction blocked waiting for a lock.",
               "repro.db.locks"),
    MetricSpec("lock.wait_seconds", "histogram", "seconds",
               "Real (wall-clock) seconds per blocking lock wait — "
               "lock waits are thread scheduling, not simulated I/O, "
               "so they never advance the sim clock.",
               "repro.db.locks"),
)


@dataclass
class _LockState:
    """Per-resource lock bookkeeping."""

    holders: dict[int, str] = field(default_factory=dict)  # xid -> mode
    waiters: list[tuple[int, str]] = field(default_factory=list)


@dataclass(frozen=True)
class LockHandle:
    """Recorded on the transaction for release at commit/abort."""

    resource: Hashable
    mode: str


def _compatible(held: str, requested: str) -> bool:
    return held == SHARED and requested == SHARED


class LockManager:
    """Table-level S/X lock manager with waits-for deadlock detection."""

    def __init__(self, timeout_s: float = 10.0) -> None:
        self._mutex = threading.Lock()
        self._cond = threading.Condition(self._mutex)
        self._locks: dict[Hashable, _LockState] = {}
        # waits-for edges: xid -> set of xids it waits on
        self._waits_for: dict[int, set[int]] = {}
        self.timeout_s = timeout_s
        #: the session's Observability bundle (set by Database).
        self.obs = None

    # -- acquisition -------------------------------------------------------

    def acquire(self, tx: Transaction, resource: Hashable,
                mode: str = SHARED) -> None:
        """Acquire ``mode`` on ``resource`` for ``tx``, blocking as
        needed.  Re-acquisition and S→X upgrade are supported."""
        if mode not in (SHARED, EXCLUSIVE):
            raise ValueError(f"bad lock mode {mode!r}")
        with self._cond:
            state = self._locks.setdefault(resource, _LockState())
            held = state.holders.get(tx.xid)
            if held == EXCLUSIVE or held == mode:
                return  # already strong enough
            deadline = None
            while True:
                blockers = self._blockers(state, tx.xid, mode)
                if not blockers:
                    break
                # Would waiting close a cycle in the waits-for graph?
                self._waits_for[tx.xid] = blockers
                if self._cycle_from(tx.xid):
                    del self._waits_for[tx.xid]
                    raise DeadlockError(
                        f"transaction {tx.xid} chosen as deadlock victim "
                        f"waiting for {sorted(blockers)} on {resource!r}")
                if deadline is None:
                    import time as _time
                    deadline = _time.monotonic() + self.timeout_s
                state.waiters.append((tx.xid, mode))
                try:
                    import time as _time
                    wait_began = _time.monotonic()
                    remaining = deadline - wait_began
                    woke = remaining > 0 and self._cond.wait(timeout=remaining)
                    if self.obs is not None:
                        self.obs.lock_wait(tx.xid,
                                           _time.monotonic() - wait_began)
                    if not woke:
                        raise LockTimeoutError(
                            f"transaction {tx.xid} timed out waiting for "
                            f"{mode} on {resource!r}")
                finally:
                    try:
                        state.waiters.remove((tx.xid, mode))
                    except ValueError:
                        pass
                    self._waits_for.pop(tx.xid, None)
            if mode == EXCLUSIVE:
                state.holders[tx.xid] = EXCLUSIVE
            else:
                state.holders.setdefault(tx.xid, SHARED)
            tx.held_locks.append(LockHandle(resource, state.holders[tx.xid]))

    def _blockers(self, state: _LockState, xid: int, mode: str) -> set[int]:
        """Other transactions whose held locks conflict with ``mode``."""
        blockers = set()
        for holder, held_mode in state.holders.items():
            if holder == xid:
                continue
            if mode == EXCLUSIVE or held_mode == EXCLUSIVE:
                blockers.add(holder)
        return blockers

    def _cycle_from(self, start: int) -> bool:
        """DFS over the waits-for graph looking for a cycle through
        ``start``."""
        stack = list(self._waits_for.get(start, ()))
        seen = set()
        while stack:
            node = stack.pop()
            if node == start:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._waits_for.get(node, ()))
        return False

    # -- release -------------------------------------------------------------

    def release_all(self, tx: Transaction) -> None:
        """Release every lock ``tx`` holds — the shrink phase of 2PL,
        run only at commit/abort."""
        with self._cond:
            for handle in tx.held_locks:
                state = self._locks.get(handle.resource)
                if state is not None:
                    state.holders.pop(tx.xid, None)
                    if not state.holders and not state.waiters:
                        del self._locks[handle.resource]
            tx.held_locks.clear()
            self._waits_for.pop(tx.xid, None)
            self._cond.notify_all()

    # -- introspection ----------------------------------------------------------

    def holders(self, resource: Hashable) -> dict[int, str]:
        with self._mutex:
            state = self._locks.get(resource)
            return dict(state.holders) if state else {}
