"""Order-preserving binary key encoding for B-tree indexes.

B-tree nodes store keys as opaque byte strings and compare them with
plain ``bytes`` comparison, so every indexable type needs an encoding
whose byte order matches its value order.  Composite keys concatenate
the encodings of their parts with self-delimiting string encoding.

Encodings:

- integers: 8-byte big-endian with the sign bit flipped (bias), so
  negative < positive and byte order == numeric order;
- floats: IEEE-754 big-endian with sign-dependent bit flipping (the
  standard total-order trick);
- text: UTF-8 with ``0x00`` escaped as ``0x00 0xFF`` and terminated by
  ``0x00 0x00`` so that prefixes sort first and concatenation stays
  unambiguous;
- bytes: same escaping as text.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

_INT_BIAS = 1 << 63
_TERMINATOR = b"\x00\x00"
_ESCAPED_ZERO = b"\x00\xff"
_BE_Q = struct.Struct(">Q")
_BE_D = struct.Struct(">d")


def encode_int(value: int) -> bytes:
    """Order-preserving encoding of a signed 64-bit integer."""
    if not (-_INT_BIAS <= value < _INT_BIAS):
        raise ValueError(f"integer out of 64-bit range: {value}")
    return _BE_Q.pack(value + _INT_BIAS)


def decode_int(data: bytes) -> int:
    return _BE_Q.unpack_from(data, 0)[0] - _INT_BIAS


def encode_float(value: float) -> bytes:
    """Order-preserving encoding of an IEEE-754 double."""
    bits = _BE_Q.unpack(_BE_D.pack(value))[0]
    if bits & (1 << 63):
        bits = ~bits & 0xFFFFFFFFFFFFFFFF  # negative: flip all bits
    else:
        bits |= 1 << 63  # non-negative: flip sign bit
    return _BE_Q.pack(bits)


def decode_float(data: bytes) -> float:
    bits = _BE_Q.unpack_from(data, 0)[0]
    if bits & (1 << 63):
        bits &= ~(1 << 63) & 0xFFFFFFFFFFFFFFFF
    else:
        bits = ~bits & 0xFFFFFFFFFFFFFFFF
    return _BE_D.unpack(_BE_Q.pack(bits))[0]


def encode_bytes(value: bytes) -> bytes:
    """Self-delimiting, order-preserving encoding of a byte string."""
    return value.replace(b"\x00", _ESCAPED_ZERO) + _TERMINATOR


def decode_bytes(data: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Decode a string encoded by :func:`encode_bytes` starting at
    ``offset``.  Returns ``(value, next_offset)``.

    Zero-free runs are skipped in one ``index`` call instead of byte
    by byte; most keys have no embedded zeros, so the common case is a
    single scan plus one slice.
    """
    find = data.index
    i = offset
    out = None
    while True:
        j = find(0, i)
        nxt = data[j + 1]
        if nxt == 0:
            if out is None:
                return bytes(data[i:j]), j + 2
            out += data[i:j]
            return bytes(out), j + 2
        if nxt == 0xFF:
            if out is None:
                out = bytearray()
            out += data[i:j]
            out.append(0)
            i = j + 2
            continue
        raise ValueError("malformed escaped string key")


def encode_text(value: str) -> bytes:
    return encode_bytes(value.encode("utf-8"))


_NONE_KEY = b"\x00\x01"

_EXACT_DISPATCH = {
    int: encode_int,
    float: encode_float,
    str: encode_text,
    bytes: encode_bytes,
    bool: lambda value: encode_int(int(value)),
}


def encode_value(value: object) -> bytes:
    """Encode a single Python value by runtime type."""
    # Exact-type dispatch covers the hot cases (int chunk/file keys,
    # str names) in one dict probe; subclasses and None fall through
    # to the isinstance chain below.
    enc = _EXACT_DISPATCH.get(type(value))
    if enc is not None:
        return enc(value)
    if isinstance(value, bool):
        return encode_int(int(value))
    if isinstance(value, int):
        return encode_int(value)
    if isinstance(value, float):
        return encode_float(value)
    if isinstance(value, str):
        return encode_text(value)
    if isinstance(value, (bytes, bytearray)):
        return encode_bytes(bytes(value))
    if value is None:
        # Columns are typed, so None is only ever compared against
        # values of one type.  0x00 0x01 sorts before every text/bytes
        # encoding (those escape 0x00 as 0x00 0xFF); ordering relative
        # to numerics is unspecified and unused.
        return b"\x00\x01"
    raise TypeError(f"cannot encode key component of type {type(value)!r}")


def encode_key(values: Sequence[object] | object) -> bytes:
    """Encode one value or a composite of values into a single key."""
    if isinstance(values, (list, tuple)):
        return b"".join(encode_value(v) for v in values)
    return encode_value(values)


def encode_prefix(values: Iterable[object]) -> bytes:
    """Encode a key prefix (for range scans over composite keys)."""
    return b"".join(encode_value(v) for v in values)
