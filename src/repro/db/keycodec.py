"""Order-preserving binary key encoding for B-tree indexes.

B-tree nodes store keys as opaque byte strings and compare them with
plain ``bytes`` comparison, so every indexable type needs an encoding
whose byte order matches its value order.  Composite keys concatenate
the encodings of their parts with self-delimiting string encoding.

Encodings:

- integers: 8-byte big-endian with the sign bit flipped (bias), so
  negative < positive and byte order == numeric order;
- floats: IEEE-754 big-endian with sign-dependent bit flipping (the
  standard total-order trick);
- text: UTF-8 with ``0x00`` escaped as ``0x00 0xFF`` and terminated by
  ``0x00 0x00`` so that prefixes sort first and concatenation stays
  unambiguous;
- bytes: same escaping as text.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

_INT_BIAS = 1 << 63
_TERMINATOR = b"\x00\x00"
_ESCAPED_ZERO = b"\x00\xff"


def encode_int(value: int) -> bytes:
    """Order-preserving encoding of a signed 64-bit integer."""
    if not (-_INT_BIAS <= value < _INT_BIAS):
        raise ValueError(f"integer out of 64-bit range: {value}")
    return struct.pack(">Q", value + _INT_BIAS)


def decode_int(data: bytes) -> int:
    return struct.unpack(">Q", data[:8])[0] - _INT_BIAS


def encode_float(value: float) -> bytes:
    """Order-preserving encoding of an IEEE-754 double."""
    bits = struct.unpack(">Q", struct.pack(">d", value))[0]
    if bits & (1 << 63):
        bits = ~bits & 0xFFFFFFFFFFFFFFFF  # negative: flip all bits
    else:
        bits |= 1 << 63  # non-negative: flip sign bit
    return struct.pack(">Q", bits)


def decode_float(data: bytes) -> float:
    bits = struct.unpack(">Q", data[:8])[0]
    if bits & (1 << 63):
        bits &= ~(1 << 63) & 0xFFFFFFFFFFFFFFFF
    else:
        bits = ~bits & 0xFFFFFFFFFFFFFFFF
    return struct.unpack(">d", struct.pack(">Q", bits))[0]


def encode_bytes(value: bytes) -> bytes:
    """Self-delimiting, order-preserving encoding of a byte string."""
    return value.replace(b"\x00", _ESCAPED_ZERO) + _TERMINATOR


def decode_bytes(data: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Decode a string encoded by :func:`encode_bytes` starting at
    ``offset``.  Returns ``(value, next_offset)``."""
    out = bytearray()
    i = offset
    while True:
        b = data[i]
        if b == 0:
            nxt = data[i + 1]
            if nxt == 0:
                return bytes(out), i + 2
            if nxt == 0xFF:
                out.append(0)
                i += 2
                continue
            raise ValueError("malformed escaped string key")
        out.append(b)
        i += 1


def encode_text(value: str) -> bytes:
    return encode_bytes(value.encode("utf-8"))


def encode_value(value: object) -> bytes:
    """Encode a single Python value by runtime type."""
    if isinstance(value, bool):
        return encode_int(int(value))
    if isinstance(value, int):
        return encode_int(value)
    if isinstance(value, float):
        return encode_float(value)
    if isinstance(value, str):
        return encode_text(value)
    if isinstance(value, (bytes, bytearray)):
        return encode_bytes(bytes(value))
    if value is None:
        # Columns are typed, so None is only ever compared against
        # values of one type.  0x00 0x01 sorts before every text/bytes
        # encoding (those escape 0x00 as 0x00 0xFF); ordering relative
        # to numerics is unspecified and unused.
        return b"\x00\x01"
    raise TypeError(f"cannot encode key component of type {type(value)!r}")


def encode_key(values: Sequence[object] | object) -> bytes:
    """Encode one value or a composite of values into a single key."""
    if isinstance(values, (list, tuple)):
        return b"".join(encode_value(v) for v in values)
    return encode_value(values)


def encode_prefix(values: Iterable[object]) -> bytes:
    """Encode a key prefix (for range scans over composite keys)."""
    return b"".join(encode_value(v) for v in values)
