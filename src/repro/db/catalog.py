"""System catalogs.

Tables, indexes, types, and functions are described by rows in catalog
heap tables (`pg_class`, `pg_index`, `pg_type`, `pg_proc`), which are
themselves ordinary no-overwrite heaps on the root device.  Because
catalog changes are ordinary record inserts/deletes, DDL is transaction
protected — exactly what Inversion needs for "when a new file is
created in a directory, the directory … must be updated, and the new
file must be created" to be atomic, and what makes old versions of
*user-defined functions* visible to time travel ("users can even run
old versions of these functions").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.db.buffer import BufferCache
from repro.db.heap import HeapFile
from repro.db.snapshot import Snapshot
from repro.db.transactions import Transaction
from repro.db.tuples import Column, Schema
from repro.devices.switch import DeviceSwitch
from repro.errors import CatalogError
from repro.sim.cpu import CpuModel

# Fixed oids for the catalogs themselves.
PG_CLASS_OID = 10
PG_INDEX_OID = 11
PG_TYPE_OID = 12
PG_PROC_OID = 13
FIRST_USER_OID = 1000
OID_HWM_TAG = "pg_oid_hwm"
OID_HWM_STRIDE = 128

PG_CLASS_SCHEMA = Schema([
    Column("oid", "oid"),
    Column("relname", "text"),
    Column("devname", "text"),
    Column("relkind", "text"),   # 'h' heap, 'i' index, 'a' archive
    Column("schema", "text"),    # JSON column list for heaps
])

PG_INDEX_SCHEMA = Schema([
    Column("oid", "oid"),
    Column("indexname", "text"),
    Column("tableoid", "oid"),
    Column("keycols", "text"),   # JSON list of column names
])

PG_TYPE_SCHEMA = Schema([
    Column("oid", "oid"),
    Column("typname", "text"),
    Column("description", "text"),
])

PG_PROC_SCHEMA = Schema([
    Column("oid", "oid"),
    Column("proname", "text"),
    Column("lang", "text"),        # 'python' (≈ dynamically loaded C) or 'postquel'
    Column("argtypes", "text"),    # JSON list of type names
    Column("rettype", "text"),
    Column("src", "text"),         # registry key or POSTQUEL expression text
    Column("typrestrict", "text"),  # file type the function is defined on ('' = any)
])

_CATALOGS: dict[str, tuple[int, Schema]] = {
    "pg_class": (PG_CLASS_OID, PG_CLASS_SCHEMA),
    "pg_index": (PG_INDEX_OID, PG_INDEX_SCHEMA),
    "pg_type": (PG_TYPE_OID, PG_TYPE_SCHEMA),
    "pg_proc": (PG_PROC_OID, PG_PROC_SCHEMA),
}


@dataclass(frozen=True)
class IndexInfo:
    oid: int
    name: str
    tableoid: int
    keycols: tuple[str, ...]


@dataclass(frozen=True)
class TableInfo:
    oid: int
    name: str
    devname: str
    relkind: str
    schema: Schema
    indexes: tuple[IndexInfo, ...] = ()


@dataclass(frozen=True)
class TypeInfo:
    oid: int
    name: str
    description: str


@dataclass(frozen=True)
class ProcInfo:
    oid: int
    name: str
    lang: str
    argtypes: tuple[str, ...]
    rettype: str
    src: str
    typrestrict: str


@dataclass
class Catalog:
    """Catalog accessor bound to a buffer cache and device switch."""

    switch: DeviceSwitch
    buffers: BufferCache
    root_device: str
    cpu: CpuModel | None = None
    _next_oid: int = FIRST_USER_OID
    _table_cache: dict[str, TableInfo] = field(default_factory=dict)

    # -- bootstrap -------------------------------------------------------

    def bootstrap_create(self, tx: Transaction) -> None:
        """Create the catalog heaps and their self-describing rows.
        Called once at database creation, inside the first transaction."""
        dev = self.switch.get(self.root_device)
        for relname, (oid, schema) in _CATALOGS.items():
            dev.create_relation(relname)
        pg_class = self._heap("pg_class")
        for relname, (oid, schema) in _CATALOGS.items():
            pg_class.insert(tx, (oid, relname, self.root_device, "h",
                                 json.dumps(schema.to_dict())))
        self._load_oid_hwm()

    def _load_oid_hwm(self) -> None:
        raw = self.switch.get(self.root_device).read_meta(OID_HWM_TAG)
        if raw:
            self._next_oid = max(self._next_oid, int(raw.decode("ascii")))
        self._oid_hwm = self._next_oid

    def allocate_oid(self) -> int:
        """Allocate a unique oid.  The persisted high-water mark always
        stays *ahead* of every issued oid, so a crash can never cause a
        reissue (the cost is one forced metadata write per
        OID_HWM_STRIDE allocations)."""
        oid = self._next_oid
        self._next_oid += 1
        if self._next_oid > getattr(self, "_oid_hwm", 0):
            self._oid_hwm = self._next_oid + OID_HWM_STRIDE
            self.switch.get(self.root_device).sync_write_meta(
                OID_HWM_TAG, str(self._oid_hwm).encode("ascii"))
        return oid

    # -- raw heap access ----------------------------------------------------

    def _heap(self, catname: str) -> HeapFile:
        oid, schema = _CATALOGS[catname]
        return HeapFile(self.buffers, self.root_device, catname, schema,
                        cpu=self.cpu)

    # -- table metadata -------------------------------------------------------

    def invalidate_cache(self) -> None:
        self._table_cache.clear()

    def lookup_table(self, name: str, snapshot: Snapshot,
                     use_cache: bool = True) -> TableInfo | None:
        if use_cache and name in self._table_cache:
            return self._table_cache[name]
        pg_class = self._heap("pg_class")
        row = None
        for _tid, values in pg_class.scan(snapshot):
            if values[1] == name:
                row = values
                break
        if row is None:
            return None
        oid, relname, devname, relkind, schema_json = row
        schema = Schema.from_dict(json.loads(schema_json)) if schema_json else Schema([])
        indexes = tuple(self._indexes_for(oid, snapshot))
        info = TableInfo(oid, relname, devname, relkind, schema, indexes)
        if use_cache:
            self._table_cache[name] = info
        return info

    def index_exists(self, indexname: str, snapshot: Snapshot) -> bool:
        return any(v[1] == indexname for _t, v in
                   self._heap("pg_index").scan(snapshot))

    def _indexes_for(self, tableoid: int, snapshot: Snapshot) -> list[IndexInfo]:
        pg_index = self._heap("pg_index")
        out = []
        for _tid, values in pg_index.scan(snapshot):
            oid, indexname, t_oid, keycols_json = values
            if t_oid == tableoid:
                out.append(IndexInfo(oid, indexname, t_oid,
                                     tuple(json.loads(keycols_json))))
        return out

    def list_tables(self, snapshot: Snapshot,
                    relkind: str | None = "h") -> list[TableInfo]:
        pg_class = self._heap("pg_class")
        names = [v[1] for _t, v in pg_class.scan(snapshot)
                 if relkind is None or v[3] == relkind]
        return [info for name in names
                if (info := self.lookup_table(name, snapshot, use_cache=False))]

    # -- DDL row manipulation ----------------------------------------------------

    def add_table_row(self, tx: Transaction, oid: int, name: str,
                      devname: str, relkind: str, schema: Schema) -> None:
        self._heap("pg_class").insert(
            tx, (oid, name, devname, relkind, json.dumps(schema.to_dict())))
        self.invalidate_cache()
        tx.abort_hooks.append(self.invalidate_cache)

    def remove_table_row(self, tx: Transaction, name: str,
                         snapshot: Snapshot) -> TableInfo | None:
        pg_class = self._heap("pg_class")
        for tid, values in pg_class.scan(snapshot):
            if values[1] == name:
                pg_class.delete(tx, tid)
                self.invalidate_cache()
                tx.abort_hooks.append(self.invalidate_cache)
                return self.lookup_table(name, snapshot, use_cache=False)
        return None

    def add_index_row(self, tx: Transaction, oid: int, indexname: str,
                      tableoid: int, keycols: list[str]) -> None:
        self._heap("pg_index").insert(
            tx, (oid, indexname, tableoid, json.dumps(list(keycols))))
        self.invalidate_cache()
        tx.abort_hooks.append(self.invalidate_cache)

    def remove_index_rows(self, tx: Transaction, tableoid: int,
                          snapshot: Snapshot) -> list[IndexInfo]:
        pg_index = self._heap("pg_index")
        removed = []
        for tid, values in pg_index.scan(snapshot):
            if values[2] == tableoid:
                pg_index.delete(tx, tid)
                removed.append(IndexInfo(values[0], values[1], values[2],
                                         tuple(json.loads(values[3]))))
        if removed:
            self.invalidate_cache()
            tx.abort_hooks.append(self.invalidate_cache)
        return removed

    # -- types -------------------------------------------------------------------

    def define_type(self, tx: Transaction, name: str,
                    description: str = "") -> TypeInfo:
        snapshot = _snapshot_of(tx, self)
        if self.lookup_type(name, snapshot) is not None:
            raise CatalogError(f"type {name!r} already defined")
        oid = self.allocate_oid()
        self._heap("pg_type").insert(tx, (oid, name, description))
        return TypeInfo(oid, name, description)

    def lookup_type(self, name: str, snapshot: Snapshot) -> TypeInfo | None:
        for _tid, values in self._heap("pg_type").scan(snapshot):
            if values[1] == name:
                return TypeInfo(*values)
        return None

    def list_types(self, snapshot: Snapshot) -> list[TypeInfo]:
        return [TypeInfo(*v) for _t, v in self._heap("pg_type").scan(snapshot)]

    # -- functions ------------------------------------------------------------------

    def define_function(self, tx: Transaction, name: str, lang: str,
                        argtypes: list[str], rettype: str, src: str,
                        typrestrict: str = "") -> ProcInfo:
        snapshot = _snapshot_of(tx, self)
        existing = self.lookup_function(name, snapshot)
        if existing is not None:
            # Redefinition replaces: delete the old row (the old version
            # stays visible to time travel).
            self._delete_function_row(tx, name, snapshot)
        oid = self.allocate_oid()
        self._heap("pg_proc").insert(
            tx, (oid, name, lang, json.dumps(list(argtypes)), rettype, src,
                 typrestrict))
        return ProcInfo(oid, name, lang, tuple(argtypes), rettype, src, typrestrict)

    def _delete_function_row(self, tx: Transaction, name: str,
                             snapshot: Snapshot) -> None:
        pg_proc = self._heap("pg_proc")
        for tid, values in pg_proc.scan(snapshot):
            if values[1] == name:
                pg_proc.delete(tx, tid)

    def lookup_function(self, name: str, snapshot: Snapshot) -> ProcInfo | None:
        for _tid, values in self._heap("pg_proc").scan(snapshot):
            if values[1] == name:
                return ProcInfo(values[0], values[1], values[2],
                                tuple(json.loads(values[3])), values[4],
                                values[5], values[6])
        return None

    def list_functions(self, snapshot: Snapshot) -> list[ProcInfo]:
        return [ProcInfo(v[0], v[1], v[2], tuple(json.loads(v[3])), v[4],
                         v[5], v[6])
                for _t, v in self._heap("pg_proc").scan(snapshot)]


def _snapshot_of(tx: Transaction, catalog: Catalog) -> Snapshot:
    """A current snapshot for ``tx`` (local import avoids a cycle)."""
    from repro.db.snapshot import CurrentSnapshot
    # The catalog has no direct TransactionManager reference; DDL entry
    # points pass transactions created by the Database, which installs
    # the manager here.
    tm = getattr(tx, "_tm", None)
    if tm is None:
        raise CatalogError("transaction not bound to a database")
    return CurrentSnapshot(tm, tx.xid)
