"""Record schemas, serialization, and the no-overwrite record header.

Every stored record carries a 16-byte header ``(xmin, xmax)``: the ids
of the transactions that inserted and (if any) deleted it.  "When a
record is updated or deleted, the original record is marked invalid,
but remains in place" — marking invalid means stamping ``xmax``; the
record bytes are otherwise immutable.  Visibility of a record under a
given snapshot is decided entirely from this header plus the
transaction status file (:mod:`repro.db.snapshot`).

Value serialization is schema-driven via :class:`Schema`.  Supported
column types (a POSTGRES-flavoured set):

========  =======================================
type      representation
========  =======================================
int4      4-byte signed little-endian
int8      8-byte signed little-endian ("longlong" in the paper's
          ``fileatt.size``)
oid       8-byte unsigned object identifier
float8    IEEE-754 double
bool      1 byte
time      float8 seconds (simulated clock time)
text      u32 length + UTF-8 bytes
bytea     u32 length + raw bytes
========  =======================================

Each schema compiles its layout once into a pack/unpack plan: runs of
consecutive fixed-width columns fuse into a single precompiled
``struct.Struct`` (``<`` formats have no padding, so a fused pack is
byte-identical to packing column by column), and variable-length
columns keep their u32-length framing.  ``unpack`` accepts any buffer
(``bytes`` or ``memoryview``), so callers can decode straight out of a
page without an intermediate copy.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Sequence

from repro.errors import TupleError

TUPLE_HEADER_FMT = "<QQ"
_HEADER_STRUCT = struct.Struct(TUPLE_HEADER_FMT)
TUPLE_HEADER_SIZE = _HEADER_STRUCT.size  # 16
INVALID_XID = 0

_U32 = struct.Struct("<I")
_XMAX_STRUCT = struct.Struct("<Q")

_FIXED_FMT = {
    "int4": "<i",
    "int8": "<q",
    "oid": "<Q",
    "float8": "<d",
    "time": "<d",
    "bool": "<B",
}

VARLEN_TYPES = ("text", "bytea")
TYPE_NAMES = tuple(_FIXED_FMT) + VARLEN_TYPES


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    typ: str

    def __post_init__(self) -> None:
        if self.typ not in TYPE_NAMES:
            raise TupleError(f"unknown column type {self.typ!r} for {self.name!r}")


class Schema:
    """An ordered set of columns with pack/unpack support."""

    def __init__(self, columns: Sequence[Column]) -> None:
        self.columns = tuple(columns)
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        if len(self._index) != len(self.columns):
            raise TupleError("duplicate column names in schema")
        self._plan = self._compile()

    def _compile(self) -> tuple:
        """Fuse runs of fixed-width columns into single Structs.

        Plan segments: ``("f", Struct, ((col_idx, is_bool), ...))`` for
        a fixed run, ``("t", col_idx)`` for text, ``("b", col_idx)``
        for bytea.
        """
        plan: list[tuple] = []
        run_fmt = "<"
        run_cols: list[tuple[int, bool]] = []
        for i, col in enumerate(self.columns):
            fmt = _FIXED_FMT.get(col.typ)
            if fmt is not None:
                run_fmt += fmt[1:]
                run_cols.append((i, col.typ == "bool"))
            else:
                if run_cols:
                    plan.append(("f", struct.Struct(run_fmt), tuple(run_cols)))
                    run_fmt, run_cols = "<", []
                plan.append(("t" if col.typ == "text" else "b", i))
        if run_cols:
            plan.append(("f", struct.Struct(run_fmt), tuple(run_cols)))
        return tuple(plan)

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise TupleError(f"no column {name!r} in schema") from None

    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def pack(self, values: Sequence[object]) -> bytes:
        """Serialize one row of ``values`` (no record header)."""
        if len(values) != len(self.columns):
            raise TupleError(
                f"row has {len(values)} values, schema has {len(self.columns)} columns")
        parts: list[bytes] = []
        for seg in self._plan:
            kind = seg[0]
            if kind == "f":
                _, s, cols = seg
                try:
                    parts.append(s.pack(*[
                        (1 if values[i] else 0) if is_bool else values[i]
                        for i, is_bool in cols]))
                except (struct.error, TypeError, ValueError):
                    self._raise_pack_error(values)
            elif kind == "t":
                i = seg[1]
                value = values[i]
                try:
                    raw = str(value).encode("utf-8")
                except (TypeError, ValueError) as exc:
                    col = self.columns[i]
                    raise TupleError(
                        f"cannot pack {value!r} as {col.typ} for column {col.name!r}: {exc}"
                    ) from None
                parts.append(_U32.pack(len(raw)) + raw)
            else:  # bytea
                i = seg[1]
                value = values[i]
                try:
                    raw = bytes(value)
                except (struct.error, TypeError, ValueError) as exc:
                    col = self.columns[i]
                    raise TupleError(
                        f"cannot pack {value!r} as {col.typ} for column {col.name!r}: {exc}"
                    ) from None
                parts.append(_U32.pack(len(raw)) + raw)
        return b"".join(parts)

    def _raise_pack_error(self, values: Sequence[object]) -> None:
        """Re-pack column by column to attribute a fused-pack failure
        to the first offending column, with the same message the
        per-column path would have raised."""
        for col, value in zip(self.columns, values):
            try:
                if col.typ == "bool":
                    struct.pack("<B", 1 if value else 0)
                elif col.typ in _FIXED_FMT:
                    struct.pack(_FIXED_FMT[col.typ], value)
                elif col.typ == "text":
                    str(value).encode("utf-8")
                else:
                    bytes(value)
            except (struct.error, TypeError, ValueError) as exc:
                raise TupleError(
                    f"cannot pack {value!r} as {col.typ} for column {col.name!r}: {exc}"
                ) from None
        raise TupleError("row failed to pack")  # pragma: no cover

    def unpack(self, data, offset: int = 0) -> tuple:
        """Deserialize one row starting at ``offset``.  ``data`` may be
        any buffer (``bytes``, ``bytearray``, or ``memoryview``)."""
        values: list[object] = []
        pos = offset
        for seg in self._plan:
            kind = seg[0]
            if kind == "f":
                _, s, cols = seg
                raw = s.unpack_from(data, pos)
                pos += s.size
                for (i, is_bool), v in zip(cols, raw):
                    values.append(bool(v) if is_bool else v)
            else:
                (n,) = _U32.unpack_from(data, pos)
                pos += 4
                raw = bytes(data[pos:pos + n])
                pos += n
                values.append(raw.decode("utf-8") if kind == "t" else raw)
        return tuple(values)

    def to_dict(self) -> list[dict[str, str]]:
        """JSON-friendly description (for catalog storage)."""
        return [{"name": c.name, "typ": c.typ} for c in self.columns]

    @classmethod
    def from_dict(cls, desc: Sequence[dict[str, str]]) -> "Schema":
        return cls([Column(d["name"], d["typ"]) for d in desc])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.typ}" for c in self.columns)
        return f"Schema({cols})"


def pack_record(xmin: int, xmax: int, payload: bytes) -> bytes:
    """Prefix ``payload`` with the (xmin, xmax) record header."""
    return _HEADER_STRUCT.pack(xmin, xmax) + payload


def unpack_header(record) -> tuple[int, int]:
    """Extract ``(xmin, xmax)`` from a stored record (any buffer)."""
    return _HEADER_STRUCT.unpack_from(record, 0)


def pack_xmax_patch(xmax: int) -> tuple[int, bytes]:
    """The (record-relative offset, bytes) patch that stamps ``xmax``
    into an existing record header — the "mark invalid" of the
    no-overwrite manager."""
    return 8, _XMAX_STRUCT.pack(xmax)


def record_payload(record):
    """The payload after the record header.  Slicing preserves the
    input's buffer type, so a ``memoryview`` in stays zero-copy."""
    return record[TUPLE_HEADER_SIZE:]
