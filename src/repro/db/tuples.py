"""Record schemas, serialization, and the no-overwrite record header.

Every stored record carries a 16-byte header ``(xmin, xmax)``: the ids
of the transactions that inserted and (if any) deleted it.  "When a
record is updated or deleted, the original record is marked invalid,
but remains in place" — marking invalid means stamping ``xmax``; the
record bytes are otherwise immutable.  Visibility of a record under a
given snapshot is decided entirely from this header plus the
transaction status file (:mod:`repro.db.snapshot`).

Value serialization is schema-driven via :class:`Schema`.  Supported
column types (a POSTGRES-flavoured set):

========  =======================================
type      representation
========  =======================================
int4      4-byte signed little-endian
int8      8-byte signed little-endian ("longlong" in the paper's
          ``fileatt.size``)
oid       8-byte unsigned object identifier
float8    IEEE-754 double
bool      1 byte
time      float8 seconds (simulated clock time)
text      u32 length + UTF-8 bytes
bytea     u32 length + raw bytes
========  =======================================
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Sequence

from repro.errors import TupleError

TUPLE_HEADER_FMT = "<QQ"
TUPLE_HEADER_SIZE = struct.calcsize(TUPLE_HEADER_FMT)  # 16
INVALID_XID = 0

_FIXED_FMT = {
    "int4": "<i",
    "int8": "<q",
    "oid": "<Q",
    "float8": "<d",
    "time": "<d",
    "bool": "<B",
}

VARLEN_TYPES = ("text", "bytea")
TYPE_NAMES = tuple(_FIXED_FMT) + VARLEN_TYPES


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    typ: str

    def __post_init__(self) -> None:
        if self.typ not in TYPE_NAMES:
            raise TupleError(f"unknown column type {self.typ!r} for {self.name!r}")


class Schema:
    """An ordered set of columns with pack/unpack support."""

    def __init__(self, columns: Sequence[Column]) -> None:
        self.columns = tuple(columns)
        self._index = {c.name: i for i, c in enumerate(self.columns)}
        if len(self._index) != len(self.columns):
            raise TupleError("duplicate column names in schema")

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Schema) and self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise TupleError(f"no column {name!r} in schema") from None

    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def pack(self, values: Sequence[object]) -> bytes:
        """Serialize one row of ``values`` (no record header)."""
        if len(values) != len(self.columns):
            raise TupleError(
                f"row has {len(values)} values, schema has {len(self.columns)} columns")
        parts: list[bytes] = []
        for col, value in zip(self.columns, values):
            try:
                if col.typ in _FIXED_FMT:
                    if col.typ == "bool":
                        parts.append(struct.pack("<B", 1 if value else 0))
                    else:
                        parts.append(struct.pack(_FIXED_FMT[col.typ], value))
                elif col.typ == "text":
                    raw = str(value).encode("utf-8")
                    parts.append(struct.pack("<I", len(raw)) + raw)
                else:  # bytea
                    raw = bytes(value)
                    parts.append(struct.pack("<I", len(raw)) + raw)
            except (struct.error, TypeError, ValueError) as exc:
                raise TupleError(
                    f"cannot pack {value!r} as {col.typ} for column {col.name!r}: {exc}"
                ) from None
        return b"".join(parts)

    def unpack(self, data: bytes, offset: int = 0) -> tuple:
        """Deserialize one row starting at ``offset``."""
        values: list[object] = []
        pos = offset
        for col in self.columns:
            if col.typ in _FIXED_FMT:
                fmt = _FIXED_FMT[col.typ]
                size = struct.calcsize(fmt)
                (raw,) = struct.unpack_from(fmt, data, pos)
                values.append(bool(raw) if col.typ == "bool" else raw)
                pos += size
            else:
                (n,) = struct.unpack_from("<I", data, pos)
                pos += 4
                raw = bytes(data[pos:pos + n])
                pos += n
                values.append(raw.decode("utf-8") if col.typ == "text" else raw)
        return tuple(values)

    def to_dict(self) -> list[dict[str, str]]:
        """JSON-friendly description (for catalog storage)."""
        return [{"name": c.name, "typ": c.typ} for c in self.columns]

    @classmethod
    def from_dict(cls, desc: Sequence[dict[str, str]]) -> "Schema":
        return cls([Column(d["name"], d["typ"]) for d in desc])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(f"{c.name} {c.typ}" for c in self.columns)
        return f"Schema({cols})"


def pack_record(xmin: int, xmax: int, payload: bytes) -> bytes:
    """Prefix ``payload`` with the (xmin, xmax) record header."""
    return struct.pack(TUPLE_HEADER_FMT, xmin, xmax) + payload


def unpack_header(record: bytes) -> tuple[int, int]:
    """Extract ``(xmin, xmax)`` from a stored record."""
    return struct.unpack_from(TUPLE_HEADER_FMT, record, 0)


def pack_xmax_patch(xmax: int) -> tuple[int, bytes]:
    """The (record-relative offset, bytes) patch that stamps ``xmax``
    into an existing record header — the "mark invalid" of the
    no-overwrite manager."""
    return 8, struct.pack("<Q", xmax)


def record_payload(record: bytes) -> bytes:
    return record[TUPLE_HEADER_SIZE:]
