"""Page-based B-tree indexes.

"In order to speed up seeks on files, Inversion maintains a Btree index
on the chunk number attribute", and "various Btree indices on the
naming table speed up [pathname] operations".  Index pages live on the
same devices as heap pages and go through the same buffer cache, so
index maintenance *competes with data writes for the disk head* — the
effect the paper blames for Figure 3's creation slowdown.

Structure: a B+ tree.  Page 0 of the index relation is a meta page
holding the root page number.  Leaf entries map a composite key to a
heap :class:`~repro.db.heap.TID`; internal entries map separator keys
to child pages, with each node's first entry acting as the "-infinity"
separator.  Leaves are chained through the page header's ``special``
field for range scans.

Keys are made unique by appending the TID to the user key (both in
order-preserving encodings), which keeps duplicate user keys — e.g.
many historical versions of the same chunk number, which time travel
requires ("an index on all of the file's available data, including
both old and current blocks") — correct across page splits.

Index entries are not themselves versioned: an entry inserted by a
transaction that later aborts simply points at a record no snapshot
will see.  The vacuum cleaner rebuilds indexes when it moves records.

Hot-path engineering (all provably charge-identical to the plain
implementation):

- Each node's entry keys are decoded once into a sorted ``list`` kept
  in the page's ``cache`` slot, so a descent binary-searches with the
  C-level :mod:`bisect` instead of re-decoding a key per comparison.
  The simulated-CPU comparison charge is replayed arithmetically: the
  branch taken at each probe of the classic bisect loop depends only
  on whether the probe index is below the final insertion point, so
  the comparison count is a pure function of ``(nslots, insertion
  point)`` and is reproduced exactly without touching any key bytes.
- The meta page memoizes its decoded root page number in its ``cache``
  slot (invalidated by the same write that changes it).
- Repeated descents revalidate the previous root-to-leaf walk: if each
  cached internal node is still the identical resident page object at
  the same mutation version and the key still falls in the remembered
  separator window, the walk reuses the remembered child without
  re-searching.  Every level still issues its ``get_page`` in the same
  order, so buffer-cache hits, LRU order, and per-xid accounting are
  byte-identical; only redundant Python work is skipped.
"""

from __future__ import annotations

import struct
from bisect import bisect_left, bisect_right
from typing import Iterator, Sequence

from repro.db.buffer import BufferCache
from repro.db.heap import TID
from repro.db.keycodec import encode_key
from repro.db.page import (
    PAGE_BTREE_INTERNAL,
    PAGE_BTREE_LEAF,
    PAGE_BTREE_META,
    Page,
)
from repro.db.transactions import Transaction
from repro.errors import BTreeError
from repro.obs.registry import MetricSpec
from repro.obs.tracing import NO_SPAN
from repro.sim.cpu import CpuModel

METRICS = (
    MetricSpec("btree.total_descents", "counter", "descents",
               "Root-to-leaf descents this session (the registry "
               "re-baselines the process-global class counter at bind "
               "time).",
               "repro.db.btree"),
    MetricSpec("btree.descents", "counter", "descents",
               "Root-to-leaf descents per index relation this session.",
               "repro.db.btree", ("relation",)),
    MetricSpec("btree.descent_fastpath_hits", "counter", "descents",
               "Descents whose full root-to-leaf walk was revalidated "
               "from the previous descent's cached path (same resident "
               "pages, same separator windows) instead of re-searched. "
               "Page reads and simulated-CPU charges are identical "
               "either way; only redundant Python work is skipped.",
               "repro.db.btree"),
)

_KLEN_FMT = "<H"
_CHILD_FMT = "<I"
_META_FMT = "<I"
_KLEN = struct.Struct(_KLEN_FMT)
_CHILD = struct.Struct(_CHILD_FMT)
_META = struct.Struct(_META_FMT)

_HI_SUFFIX = b"\xff" * 8
"""Appended to a user-key encoding to form an upper bound covering any
TID suffix."""


def _leaf_entry(key: bytes, tid: TID) -> bytes:
    return _KLEN.pack(len(key)) + key + tid.pack()


def _internal_entry(key: bytes, child: int) -> bytes:
    return _KLEN.pack(len(key)) + key + _CHILD.pack(child)


def _entry_key(record) -> bytes:
    (klen,) = _KLEN.unpack_from(record, 0)
    return bytes(record[2:2 + klen])


def _leaf_tid(record) -> TID:
    (klen,) = _KLEN.unpack_from(record, 0)
    return TID.unpack(record, 2 + klen)


def _internal_child(record) -> int:
    (klen,) = _KLEN.unpack_from(record, 0)
    (child,) = _CHILD.unpack_from(record, 2 + klen)
    return child


def _page_keys(page: Page) -> list[bytes]:
    """The node's entry keys as a sorted list, decoded once and kept in
    the page's ``cache`` slot until the next mutation."""
    keys = page.cache
    if keys is None:
        mv = page.mv
        unpack_klen = _KLEN.unpack_from
        keys = []
        append = keys.append
        for offset, length in page._slots_all():
            (klen,) = unpack_klen(mv, offset)
            append(bytes(mv[offset + 2:offset + 2 + klen]))
        page.cache = keys
    return keys


def _replay_ncmp(n: int, p: int) -> int:
    """Comparison count of a binary search over ``n`` slots that lands
    at insertion point ``p``.

    In the classic loop the branch at each probe ``mid`` is "go right"
    exactly when ``mid < p`` (for ``bisect_right``, ``keys[mid] <= key
    ⟺ mid < p``; for ``bisect_left``, ``keys[mid] < key ⟺ mid < p``),
    so the probe sequence — and hence the count the simulated CPU must
    be charged — is determined by ``(n, p)`` alone.
    """
    lo, hi, ncmp = 0, n, 0
    while lo < hi:
        mid = (lo + hi) >> 1
        ncmp += 1
        if mid < p:
            lo = mid + 1
        else:
            hi = mid
    return ncmp


class BTree:
    """A B+ tree index over (composite key → TID)."""

    META_PAGE = 0

    #: process-wide count of root-to-leaf descents.  Benchmarks snapshot
    #: this around a workload to assert the range-read fast path really
    #: does O(1) descents where the per-chunk path did O(N).
    total_descents = 0
    #: the same count broken down by index relation name — lets the
    #: sequential-read benchmark assert on chunk-index descents alone,
    #: separate from naming/fileatt bookkeeping probes.
    descents_by_rel: dict[str, int] = {}
    #: descents fully served by revalidating the cached previous walk.
    descent_fastpath_hits = 0

    def __init__(self, buffers: BufferCache, dev_name: str, relname: str,
                 cpu: CpuModel | None = None) -> None:
        self.buffers = buffers
        self.dev_name = dev_name
        self.relname = relname
        self.cpu = cpu
        self._hkey = (dev_name, relname)

    # -- creation -------------------------------------------------------

    @classmethod
    def create(cls, buffers: BufferCache, dev_name: str, relname: str,
               cpu: CpuModel | None = None) -> "BTree":
        """Format a freshly created (empty) index relation."""
        metano, meta = buffers.new_page(dev_name, relname, PAGE_BTREE_META)
        if metano != cls.META_PAGE:
            raise BTreeError(f"meta page allocated at {metano}, expected 0")
        rootno, _root = buffers.new_page(dev_name, relname, PAGE_BTREE_LEAF)
        meta.add_record(_META.pack(rootno))
        buffers.mark_dirty(dev_name, relname, cls.META_PAGE)
        return cls(buffers, dev_name, relname, cpu)

    # -- page helpers -------------------------------------------------------

    def _page(self, pageno: int) -> Page:
        return self.buffers.get_page(self.dev_name, self.relname, pageno)

    def _dirty(self, pageno: int) -> None:
        self.buffers.mark_dirty(self.dev_name, self.relname, pageno)

    def _root(self) -> int:
        meta = self._page(self.META_PAGE)
        root = meta.cache
        if root is None:
            (root,) = _META.unpack_from(meta.record_view(0), 0)
            meta.cache = root
        return root

    def _set_root(self, pageno: int) -> None:
        meta = self._page(self.META_PAGE)
        meta.overwrite_record(0, _META.pack(pageno))
        meta.cache = pageno
        self._dirty(self.META_PAGE)

    def _is_leaf(self, page: Page) -> bool:
        return bool(page.flags & PAGE_BTREE_LEAF)

    # -- search helpers --------------------------------------------------------

    def _bisect(self, page: Page, key: bytes, right: bool) -> int:
        """Slot index where ``key`` would be inserted to keep order.
        ``right=True`` → after equal keys."""
        keys = _page_keys(page)
        p = bisect_right(keys, key) if right else bisect_left(keys, key)
        if self.cpu is not None and keys:
            self.cpu.btree_compare(_replay_ncmp(len(keys), p))
        return p

    def _child_for(self, page: Page, key: bytes) -> tuple[int, int]:
        """(slot index, child pageno) of the child covering ``key`` in an
        internal node."""
        idx = self._bisect(page, key, right=True) - 1
        if idx < 0:
            idx = 0  # first entry is the -infinity separator
        return idx, _internal_child(page.record_view(idx))

    def _descend(self, key: bytes) -> tuple[int, list[tuple[int, int]]]:
        """Find the leaf for ``key``; returns (leaf pageno, path) where
        path is [(internal pageno, slot taken), ...] from the root."""
        BTree.total_descents += 1
        BTree.descents_by_rel[self.relname] = \
            BTree.descents_by_rel.get(self.relname, 0) + 1
        obs = self.buffers.obs
        span = obs.span("btree.descend", relation=self.relname) \
            if obs is not None and obs.tracer.enabled else NO_SPAN
        with span as sp:
            hints = self.buffers.descent_hints
            hint = hints.get(self._hkey)
            fast = hint is not None
            cpu = self.cpu
            pageno = self._root()
            path: list[tuple[int, int]] = []
            walk: list[tuple[Page, int, int, int]] = []
            level = 0
            while True:
                page = self._page(pageno)
                if page.flags & PAGE_BTREE_LEAF:
                    sp.set(depth=len(path) + 1)
                    if fast and level and level == len(hint):
                        BTree.descent_fastpath_hits += 1
                    hints[self._hkey] = walk
                    return pageno, path
                taken = False
                if fast and level < len(hint):
                    hpage, hver, hidx, hchild = hint[level]
                    if hpage is page and hver == page.version:
                        keys = _page_keys(page)
                        n = len(keys)
                        if keys[hidx] <= key and (hidx + 1 >= n
                                                  or keys[hidx + 1] > key):
                            # Same separator window as last time: the
                            # full search would land at p = hidx + 1.
                            if cpu is not None and n:
                                cpu.btree_compare(_replay_ncmp(n, hidx + 1))
                            idx, child = hidx, hchild
                            taken = True
                if not taken:
                    fast = False
                    idx, child = self._child_for(page, key)
                path.append((pageno, idx))
                walk.append((page, page.version, idx, child))
                pageno = child
                level += 1

    # -- insertion -----------------------------------------------------------------

    def insert(self, tx: Transaction | None, key_values: Sequence[object] | object,
               tid: TID) -> None:
        """Add an entry.  ``key_values`` is one value or a composite.
        ``tx`` may be None for physical maintenance (index rebuilds)."""
        key = encode_key(key_values) + tid.pack()
        entry = _leaf_entry(key, tid)
        leafno, path = self._descend(key)
        self._insert_into(leafno, path, key, entry, is_leaf=True)
        if tx is not None:
            tx.wrote = True

    def _insert_into(self, pageno: int, path: list[tuple[int, int]],
                     key: bytes, entry: bytes, is_leaf: bool) -> None:
        page = self._page(pageno)
        if page.fits(len(entry)):
            keys = _page_keys(page)
            idx = self._bisect(page, key, right=True)
            page.insert_record(idx, entry)
            # The insert dropped the page's key cache; the new entry's
            # key is exactly ``key``, so patch the list back in rather
            # than re-decoding the whole node next descent.
            keys.insert(idx, key)
            page.cache = keys
            self._dirty(pageno)
            return
        # Split.
        sep_key, right_pageno = self._split(pageno, is_leaf)
        # Re-fetch and insert into the correct half.
        target = pageno if key < sep_key else right_pageno
        tpage = self._page(target)
        keys = _page_keys(tpage)
        idx = self._bisect(tpage, key, right=True)
        tpage.insert_record(idx, entry)
        keys.insert(idx, key)
        tpage.cache = keys
        self._dirty(target)
        # Propagate the separator upward.
        self._insert_separator(path, sep_key, right_pageno)

    def _split(self, pageno: int, is_leaf: bool) -> tuple[bytes, int]:
        """Split a full node; returns (separator key, right pageno).

        Ordering note: every page is fully mutated and marked dirty
        before the next cache call, so LRU eviction of an in-flight
        page can never lose an update."""
        page = self._page(pageno)
        records = page.records()
        old_special = page.special
        mid = len(records) // 2
        if mid == 0 or mid >= len(records):
            raise BTreeError(f"cannot split node with {len(records)} entries")
        sep_key = _entry_key(records[mid])
        if is_leaf:
            right_records = records[mid:]
        else:
            # Promote the middle key; its child becomes the right node's
            # -infinity entry.
            promoted_child = _internal_child(records[mid])
            right_records = [_internal_entry(b"", promoted_child)] + records[mid + 1:]
        flags = PAGE_BTREE_LEAF if is_leaf else PAGE_BTREE_INTERNAL
        right_pageno, right = self.buffers.new_page(self.dev_name, self.relname, flags)
        for rec in right_records:
            right.add_record(rec)
        if is_leaf:
            right.special = old_special  # inherit the old right sibling
        self._dirty(right_pageno)
        # Rewrite the left node with the lower half.
        page = self._page(pageno)  # re-fetch: new_page may have evicted it
        page.rewrite(records[:mid])
        if is_leaf:
            page.special = right_pageno
        self._dirty(pageno)
        return sep_key, right_pageno

    def _insert_separator(self, path: list[tuple[int, int]],
                          sep_key: bytes, right_pageno: int) -> None:
        entry = _internal_entry(sep_key, right_pageno)
        if not path:
            # The root split: build a new root above both halves.
            old_root = self._root()
            # The left half kept the old root's pageno, so the new root
            # points at old_root and right_pageno.
            new_rootno, new_root = self.buffers.new_page(
                self.dev_name, self.relname, PAGE_BTREE_INTERNAL)
            new_root.add_record(_internal_entry(b"", old_root))
            new_root.add_record(entry)
            self._dirty(new_rootno)
            self._set_root(new_rootno)
            return
        parent_pageno, _idx = path[-1]
        self._insert_into(parent_pageno, path[:-1], sep_key, entry, is_leaf=False)

    # -- lookup ---------------------------------------------------------------------

    def search(self, key_values: Sequence[object] | object) -> list[TID]:
        """All TIDs filed under exactly this user key (every version)."""
        key = encode_key(key_values)
        return [tid for _k, tid in self.scan_range(key, key + _HI_SUFFIX)]

    def scan_range(self, lo: bytes | None, hi: bytes | None
                   ) -> Iterator[tuple[bytes, TID]]:
        """Yield (encoded key, TID) for lo ≤ key ≤ hi over leaf chains.
        ``lo``/``hi`` are encoded byte keys; None means unbounded."""
        start_key = lo if lo is not None else b""
        leafno, _path = self._descend(start_key)
        unpack_klen = _KLEN.unpack_from
        while leafno:
            page = self._page(leafno)
            idx = self._bisect(page, start_key, right=False) if lo is not None else 0
            for slot in range(idx, page.nslots):
                rec = page.record_view(slot)
                (klen,) = unpack_klen(rec, 0)
                key = bytes(rec[2:2 + klen])
                if hi is not None and key > hi:
                    return
                yield key, TID.unpack(rec, 2 + klen)
            lo = None  # only bisect in the first leaf
            leafno = page.special

    def scan_values_range(self, lo_values, hi_values) -> Iterator[tuple[bytes, TID]]:
        """Range scan by user key values (inclusive bounds; None =
        unbounded)."""
        lo = encode_key(lo_values) if lo_values is not None else None
        hi = encode_key(hi_values) + _HI_SUFFIX if hi_values is not None else None
        return self.scan_range(lo, hi)

    def scan_all(self) -> Iterator[tuple[bytes, TID]]:
        return self.scan_range(None, None)

    # -- deletion ----------------------------------------------------------------------

    def remove(self, key_values: Sequence[object] | object, tid: TID) -> bool:
        """Remove the entry for (key, tid).  Nodes are not rebalanced —
        the vacuum cleaner rebuilds indexes wholesale; this exists for
        targeted cleanup and tests."""
        key = encode_key(key_values) + tid.pack()
        leafno, _path = self._descend(key)
        while leafno:
            page = self._page(leafno)
            idx = self._bisect(page, key, right=False)
            for slot in range(idx, page.nslots):
                rec = page.get_record(slot)
                if _entry_key(rec) != key:
                    return False
                if _leaf_tid(rec) == tid:
                    page.delete_slot(slot)
                    page.compact()
                    self._dirty(leafno)
                    return True
            leafno = page.special
        return False

    # -- introspection --------------------------------------------------------------------

    def depth(self) -> int:
        """Tree height (1 = root is a leaf)."""
        pageno = self._root()
        depth = 1
        while True:
            page = self._page(pageno)
            if self._is_leaf(page):
                return depth
            _idx, pageno = self._child_for(page, b"")
            depth += 1

    def entry_count(self) -> int:
        return sum(1 for __ in self.scan_all())

    def check_invariants(self) -> None:
        """Verify key ordering within and across leaves (tests)."""
        prev = None
        for key, _tid in self.scan_all():
            if prev is not None and key < prev:
                raise BTreeError("leaf chain out of order")
            prev = key
