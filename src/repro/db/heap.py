"""No-overwrite heap tables.

"When a record is updated or deleted, the original record is marked
invalid, but remains in place.  For updates, a new record containing
the new values is added to the database."  A heap file is a sequence of
slotted pages; inserts append (with ``xmin`` = inserting xid), deletes
stamp ``xmax`` in place, updates are delete+insert.  Every version of
every record remains until the vacuum cleaner archives it, which is
what makes time travel a pure visibility computation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator

from repro.db.buffer import BufferCache
from repro.db.page import PAGE_HEAP
from repro.db.snapshot import Snapshot
from repro.db.transactions import Transaction
from repro.db.tuples import (
    INVALID_XID,
    TUPLE_HEADER_SIZE,
    Schema,
    pack_record,
    pack_xmax_patch,
    unpack_header,
)
from repro.errors import TableError
from repro.obs.registry import MetricSpec
from repro.obs.tracing import NO_SPAN
from repro.sim.cpu import CpuModel

METRICS = (
    MetricSpec("heap.rows_inserted", "counter", "rows",
               "Record versions appended per heap relation (inserts, "
               "update-new-versions, vacuum moves).",
               "repro.db.heap", ("relation",)),
)

TID_FMT = "<IH"
_TID_STRUCT = struct.Struct(TID_FMT)
TID_SIZE = _TID_STRUCT.size  # 6


@dataclass(frozen=True, order=True)
class TID:
    """A record's physical address: (page number, slot)."""

    pageno: int
    slot: int

    def pack(self) -> bytes:
        return _TID_STRUCT.pack(self.pageno, self.slot)

    @classmethod
    def unpack(cls, data, offset: int = 0) -> "TID":
        pageno, slot = _TID_STRUCT.unpack_from(data, offset)
        return cls(pageno, slot)


class HeapFile:
    """A schema-carrying no-overwrite heap."""

    def __init__(self, buffers: BufferCache, dev_name: str, relname: str,
                 schema: Schema, cpu: CpuModel | None = None) -> None:
        self.buffers = buffers
        self.dev_name = dev_name
        self.relname = relname
        self.schema = schema
        self.cpu = cpu

    # -- helpers ----------------------------------------------------------

    def npages(self) -> int:
        return self.buffers.switch.get(self.dev_name).nblocks(self.relname)

    def _page(self, pageno: int):
        return self.buffers.get_page(self.dev_name, self.relname, pageno)

    # -- write path ---------------------------------------------------------

    def insert(self, tx: Transaction, values: tuple | list) -> TID:
        """Append a new record stamped with ``tx``'s xid."""
        tx.require_active()
        tid = self.insert_raw(tx.xid, INVALID_XID, values)
        tx.wrote = True
        return tid

    def insert_raw(self, xmin: int, xmax: int, values: tuple | list) -> TID:
        """Append a record with an explicit header — used by the vacuum
        cleaner to move historical versions into the archive with their
        original transaction stamps intact."""
        if self.cpu is not None:
            self.cpu.tuple_pack()
        obs = self.buffers.obs
        if obs is not None:
            obs.heap_inserted(self.relname)
        record = pack_record(xmin, xmax, self.schema.pack(values))
        npages = self.npages()
        if npages > 0:
            pageno = npages - 1
            page = self._page(pageno)
            if page.fits(len(record)):
                slot = page.add_record(record)
                self.buffers.mark_dirty(self.dev_name, self.relname, pageno)
                return TID(pageno, slot)
        pageno, page = self.buffers.new_page(self.dev_name, self.relname, PAGE_HEAP)
        slot = page.add_record(record)
        self.buffers.mark_dirty(self.dev_name, self.relname, pageno)
        return TID(pageno, slot)

    def insert_many(self, tx: Transaction, rows: list) -> list[TID]:
        """Append many records stamped with ``tx``'s xid in one pass —
        the tail page is looked up once and carried across records, so
        a dense run of appends fills consecutive pages back-to-back and
        the resulting dirty pages coalesce into one batched device
        write at flush."""
        tx.require_active()
        obs = self.buffers.obs
        span = obs.span("heap.insert_many", relation=self.relname,
                        rows=len(rows)) \
            if obs is not None and obs.tracer.enabled else NO_SPAN
        with span:
            tids: list[TID] = []
            npages = self.npages()
            pageno = npages - 1 if npages > 0 else None
            page = self._page(pageno) if pageno is not None else None
            for values in rows:
                if self.cpu is not None:
                    self.cpu.tuple_pack()
                record = pack_record(tx.xid, INVALID_XID,
                                     self.schema.pack(values))
                if page is None or not page.fits(len(record)):
                    pageno, page = self.buffers.new_page(
                        self.dev_name, self.relname, PAGE_HEAP)
                slot = page.add_record(record)
                self.buffers.mark_dirty(self.dev_name, self.relname, pageno)
                tids.append(TID(pageno, slot))
        if obs is not None and tids:
            obs.heap_inserted(self.relname, len(tids))
        if tids:
            tx.wrote = True
        return tids

    def delete(self, tx: Transaction, tid: TID) -> None:
        """Mark the record at ``tid`` deleted by ``tx`` (stamp xmax).
        The record bytes stay in place — no-overwrite."""
        tx.require_active()
        page = self._page(tid.pageno)
        record = page.record_view(tid.slot)
        xmin, xmax = unpack_header(record)
        if xmax not in (INVALID_XID, tx.xid):
            # Under 2PL a conflicting committed deleter cannot coexist,
            # but an aborted deleter may have left its stamp: overwrite.
            pass
        offset, patch = pack_xmax_patch(tx.xid)
        page.patch_record(tid.slot, offset, patch)
        self.buffers.mark_dirty(self.dev_name, self.relname, tid.pageno)
        tx.wrote = True

    def update(self, tx: Transaction, tid: TID, values: tuple | list) -> TID:
        """Delete the old version and append the new one: "the old
        record is marked as deleted by the current transaction, and the
        new record is marked as inserted by the current transaction"."""
        self.delete(tx, tid)
        return self.insert(tx, values)

    # -- read path --------------------------------------------------------------

    def prefetch_pages(self, pagenos) -> None:
        """Pull a known set of heap pages into the buffer cache,
        batching each physically contiguous run into a single device
        read.  Unlike the cache's own miss-triggered read-ahead this is
        exact — callers that already resolved an index range know
        precisely which pages they are about to fetch, so nothing past
        the requested span is transferred."""
        npages = self.npages()
        run_start = run_len = 0
        for p in sorted(set(pagenos)):
            if not (0 <= p < npages):
                continue
            if run_len and p == run_start + run_len:
                run_len += 1
                continue
            if run_len:
                self.buffers.get_page_range(self.dev_name, self.relname,
                                            run_start, run_len)
            run_start, run_len = p, 1
        if run_len:
            self.buffers.get_page_range(self.dev_name, self.relname,
                                        run_start, run_len)

    def fetch(self, tid: TID, snapshot: Snapshot) -> tuple | None:
        """The record at ``tid`` if visible under ``snapshot``."""
        page = self._page(tid.pageno)
        if tid.slot >= page.nslots:
            return None
        record = page.record_view(tid.slot)
        xmin, xmax = unpack_header(record)
        if not snapshot.is_visible(xmin, xmax):
            return None
        if self.cpu is not None:
            self.cpu.tuple_unpack()
        return self.schema.unpack(record, TUPLE_HEADER_SIZE)

    def fetch_raw(self, tid: TID) -> tuple[int, int, tuple]:
        """(xmin, xmax, values) regardless of visibility — vacuum and
        tests use this."""
        page = self._page(tid.pageno)
        record = page.record_view(tid.slot)
        xmin, xmax = unpack_header(record)
        return xmin, xmax, self.schema.unpack(record, TUPLE_HEADER_SIZE)

    def scan(self, snapshot: Snapshot) -> Iterator[tuple[TID, tuple]]:
        """Yield every visible record in physical order."""
        for pageno in range(self.npages()):
            page = self._page(pageno)
            for slot in range(page.nslots):
                record = page.record_view(slot)
                xmin, xmax = unpack_header(record)
                if snapshot.is_visible(xmin, xmax):
                    if self.cpu is not None:
                        self.cpu.tuple_unpack()
                    yield TID(pageno, slot), self.schema.unpack(
                        record, TUPLE_HEADER_SIZE)

    def scan_all_versions(self) -> Iterator[tuple[TID, int, int, tuple]]:
        """Yield every record version: (tid, xmin, xmax, values)."""
        for pageno in range(self.npages()):
            page = self._page(pageno)
            for slot in range(page.nslots):
                record = page.record_view(slot)
                xmin, xmax = unpack_header(record)
                yield TID(pageno, slot), xmin, xmax, \
                    self.schema.unpack(record, TUPLE_HEADER_SIZE)

    def record_count_physical(self) -> int:
        """Total stored record versions (visible or not)."""
        return sum(self._page(p).nslots for p in range(self.npages()))

    def verify_same_schema(self, other: Schema) -> None:
        if self.schema != other:
            raise TableError(f"schema mismatch on {self.relname}")
