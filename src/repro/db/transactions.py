"""The transaction manager and the status file.

The POSTGRES no-overwrite manager "obviates the need for a conventional
write-ahead log, speeding recovery": committing a transaction requires
only that its commit state be recorded durably in "a special status
file".  Crash recovery is then *reading that file* — "no special log
processing is required at crash recovery time"; records stamped by
transactions with no commit record are simply invisible.

The status file here is an append-only log of commit/abort records,
persisted through the root device's metadata region (so every commit
charges one forced block write near the front of the disk — the head
movement real POSTGRES paid).  Transaction ids are never reused; a
high-water mark is forced periodically so a crash cannot resurrect an
old xid.

Neither POSTGRES 4.0.1 nor Inversion supports nested transactions: "a
single application program may only have one transaction active at any
time" — :class:`TransactionManager` enforces one active transaction per
session object, and :class:`repro.core.library.InversionClient` exposes
exactly the paper's ``p_begin``/``p_commit``/``p_abort``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.devices.base import DeviceManager
from repro.errors import RecoveryError, TransactionError
from repro.obs.registry import MetricSpec
from repro.obs.tracing import NO_SPAN
from repro.sim.clock import SimClock

METRICS = (
    MetricSpec("txn.status_forces", "counter", "ops",
               "Forced status-file appends (one meta-region block write "
               "plus a device flush each — the per-commit cost group "
               "commit amortizes).",
               "repro.db.transactions"),
    MetricSpec("txn.hwm_forces", "counter", "ops",
               "Forced xid high-water-mark writes, kept separate from "
               "commit forces.",
               "repro.db.transactions"),
    MetricSpec("txn.commits_recorded", "counter", "txns",
               "C records durably appended.",
               "repro.db.transactions"),
    MetricSpec("txn.aborts_recorded", "counter", "txns",
               "A records durably appended.",
               "repro.db.transactions"),
    MetricSpec("txn.prepares_recorded", "counter", "txns",
               "P (two-phase-commit prepare) records durably appended.",
               "repro.db.transactions"),
    MetricSpec("txn.group_batches", "counter", "ops",
               "Status forces that carried more than one commit record.",
               "repro.db.transactions"),
    MetricSpec("txn.max_group", "gauge", "txns",
               "Largest number of commit records carried by one force.",
               "repro.db.transactions"),
)

IN_PROGRESS = "in_progress"
COMMITTED = "committed"
ABORTED = "aborted"
PREPARED = "prepared"
"""Two-phase commit limbo: the transaction's data pages and its ``P``
record are durable, but the commit decision belongs to a cross-shard
coordinator.  A prepared transaction is invisible (``is_committed`` is
False) and keeps its locks until the decision arrives — possibly after
a crash, via :meth:`TransactionManager.resolve_in_doubt`."""

STATUS_TAG = "pg_status"
XID_HWM_TAG = "pg_xid_hwm"
XID_HWM_STRIDE = 64

FIRST_NORMAL_XID = 2
BOOTSTRAP_XID = 1
"""xid stamped on catalog bootstrap rows; always considered committed
at time 0."""


@dataclass
class _TxRecord:
    state: str
    start_time: float
    commit_time: float | None = None
    #: global transaction id while PREPARED (``<coordinator>.<xid>``).
    gid: str | None = None


@dataclass
class TxStats:
    """Force accounting for the write-path bench: how many synchronous
    metadata writes commits actually paid, and how many commit records
    each one carried."""

    #: forced status-file appends (each is one meta-region block write
    #: plus a device flush — the per-commit cost group commit amortizes).
    status_forces: int = 0
    #: forced xid high-water-mark writes, reported separately so the
    #: bench can tell hwm maintenance from commit forces.
    hwm_forces: int = 0
    #: ``C`` records durably appended.
    commits_recorded: int = 0
    #: ``A`` records durably appended.
    aborts_recorded: int = 0
    #: ``P`` (two-phase-commit prepare) records durably appended.
    prepares_recorded: int = 0
    #: status forces that carried more than one commit record.
    group_batches: int = 0
    #: largest number of commit records carried by one force.
    max_group: int = 0

    def commits_per_force(self) -> float:
        """Average commit records per forced status append — 1.0 is the
        paper's one-force-per-commit behaviour; group commit raises it."""
        if self.status_forces == 0:
            return 0.0
        return self.commits_recorded / self.status_forces


@dataclass
class Transaction:
    """A client-visible transaction handle."""

    xid: int
    start_time: float
    state: str = IN_PROGRESS
    #: lock handles released at commit/abort (two-phase locking).
    held_locks: list = field(default_factory=list)
    #: callbacks run on abort (catalog cache invalidation, etc.).
    abort_hooks: list[Callable[[], None]] = field(default_factory=list)
    #: True once the transaction wrote anything (read-only commits skip
    #: the page force and the status write).
    wrote: bool = False

    def require_active(self) -> None:
        if self.state != IN_PROGRESS:
            raise TransactionError(f"transaction {self.xid} is {self.state}")


class TransactionManager:
    """Allocates xids, records commit state, answers visibility calls.

    ``group_commit_window`` (simulated seconds) enables group commit:
    with the default 0.0 every writing commit forces its own status
    append (the paper's behaviour); with a positive window a committing
    transaction instead queues its ``C`` record, and the queue is forced
    as *one* multi-record append once the window has elapsed (checked at
    the next begin/commit), on an explicit :meth:`flush_commits`, or at
    close.  A queued commit is visible in memory immediately but not yet
    durable; a crash loses the queue, and because dirty pages were
    forced *before* the record was queued (data-then-status), the lost
    transactions are simply presumed aborted on recovery — no torn
    state is possible."""

    def __init__(self, device: DeviceManager, clock: SimClock,
                 group_commit_window: float = 0.0) -> None:
        self._device = device
        self._clock = clock
        self._lock = threading.Lock()
        self.group_commit_window = group_commit_window
        self.stats = TxStats()
        #: the session's Observability bundle (set by Database).
        self.obs = None
        self._records: dict[int, _TxRecord] = {
            BOOTSTRAP_XID: _TxRecord(COMMITTED, 0.0, 0.0),
        }
        self._next_xid = FIRST_NORMAL_XID
        self._durable_hwm = FIRST_NORMAL_XID
        self._recovered_in_progress = 0
        self._recovered_in_doubt = 0
        self._torn_tail = 0
        #: queued (xid, record-text) pairs not yet durably appended.
        self._pending: list[tuple[int, str]] = []
        self._batch_deadline: float | None = None
        #: highest committed xid whose C record is durable on the status
        #: file — the horizon replication lag is measured against (a
        #: queued group-commit record is visible but not yet durable, so
        #: it does not advance this).
        self._max_durable_committed = 0
        self._load()

    # -- persistence ----------------------------------------------------

    @staticmethod
    def _parse_line(line: str) -> list[tuple[int, _TxRecord]]:
        """Parse one status-file line, which may carry several records
        (a group-commit force appends all its ``C`` records as one
        line).  ``C`` and ``P`` consume 4 tokens, ``A`` consumes 3;
        raises on anything left over or malformed.  A later ``C``/``A``
        for the same xid supersedes its ``P`` (the coordinator's
        decision resolved the in-doubt transaction)."""
        tokens = line.split()
        out: list[tuple[int, _TxRecord]] = []
        i = 0
        while i < len(tokens):
            kind = tokens[i]
            if kind == "C":
                xid = int(tokens[i + 1])
                out.append((xid, _TxRecord(COMMITTED, float(tokens[i + 2]),
                                           float(tokens[i + 3]))))
                i += 4
            elif kind == "A":
                xid = int(tokens[i + 1])
                out.append((xid, _TxRecord(ABORTED, float(tokens[i + 2]))))
                i += 3
            elif kind == "P":
                xid = int(tokens[i + 1])
                out.append((xid, _TxRecord(PREPARED, float(tokens[i + 3]),
                                           gid=tokens[i + 2])))
                i += 4
            else:
                raise ValueError(f"unknown record kind {kind!r}")
        return out

    def _parse_torn_tail(self, line: str) -> tuple[
            list[tuple[int, _TxRecord]], int]:
        """Parse the final, newline-less line left by a crash mid-append.
        Records wholly before the tear are durable and kept; the last
        record is always discarded — without the terminating newline its
        final token may itself be truncated (``0.25`` torn to ``0.2``
        still parses), so it cannot be trusted.  Discarding is safe:
        the transaction's data pages were forced before the append, and
        a commit record that never became durable means the transaction
        is presumed aborted.

        Returns (kept records, highest xid glimpsed) — the glimpsed xid
        includes the discarded record, so even a torn tail keeps its
        xid from being reissued."""
        tokens = line.split()
        out: list[tuple[int, _TxRecord]] = []
        max_glimpsed = 0
        i = 0
        while i < len(tokens):
            kind = tokens[i]
            try:
                if kind == "C" and i + 4 <= len(tokens):
                    xid = int(tokens[i + 1])
                    out.append((xid, _TxRecord(COMMITTED,
                                               float(tokens[i + 2]),
                                               float(tokens[i + 3]))))
                    i += 4
                elif kind == "A" and i + 3 <= len(tokens):
                    xid = int(tokens[i + 1])
                    out.append((xid, _TxRecord(ABORTED,
                                               float(tokens[i + 2]))))
                    i += 3
                elif kind == "P" and i + 4 <= len(tokens):
                    # A torn P record is discarded like any torn tail
                    # record (it is the last record of the file), which
                    # presumes the transaction aborted — safe, because
                    # the 2PC coordinator only records its commit
                    # decision *after* every prepare force returned.
                    xid = int(tokens[i + 1])
                    out.append((xid, _TxRecord(PREPARED,
                                               float(tokens[i + 3]),
                                               gid=tokens[i + 2])))
                    i += 4
                else:
                    # The torn record: salvage its xid if readable.
                    if kind in ("C", "A", "P") and i + 2 <= len(tokens):
                        max_glimpsed = max(max_glimpsed, int(tokens[i + 1]))
                    break
            except ValueError:
                break
        if out:
            max_glimpsed = max(max_glimpsed, out[-1][0])
        return (out[:-1] if out else []), max_glimpsed

    def _load(self) -> None:
        raw = self._device.read_meta(STATUS_TAG)
        max_seen = BOOTSTRAP_XID
        if raw:
            lines = raw.decode("ascii", errors="replace").splitlines()
            for lineno, line in enumerate(lines):
                if not line:
                    continue
                torn = lineno == len(lines) - 1 and not raw.endswith(b"\n")
                if torn:
                    self._torn_tail = 1
                    parsed, glimpsed = self._parse_torn_tail(line)
                    max_seen = max(max_seen, glimpsed)
                else:
                    try:
                        parsed = self._parse_line(line)
                    except (IndexError, ValueError) as exc:
                        raise RecoveryError(
                            f"corrupt status record {line!r}") from exc
                for xid, rec in parsed:
                    self._records[xid] = rec
                    max_seen = max(max_seen, xid)
                    if (rec.state == COMMITTED
                            and xid > self._max_durable_committed):
                        self._max_durable_committed = xid
        hwm_raw = self._device.read_meta(XID_HWM_TAG)
        hwm = int(hwm_raw.decode("ascii")) if hwm_raw else FIRST_NORMAL_XID
        self._next_xid = max(max_seen + 1, hwm)
        self._durable_hwm = hwm
        # xids below the high-water mark with no status record belong to
        # transactions that were in progress (or read-only) at a crash:
        # they are presumed aborted by the visibility rules.
        self._recovered_in_progress = sum(
            1 for xid in range(FIRST_NORMAL_XID, max_seen + 1)
            if xid not in self._records)
        # Prepared transactions with no later C/A record are *in doubt*:
        # their fate belongs to the 2PC coordinator's decision log, and
        # cluster-level recovery must resolve them before serving reads.
        self._recovered_in_doubt = sum(
            1 for rec in self._records.values() if rec.state == PREPARED)
        # Force the high-water mark ahead of need, while nobody is
        # waiting on the lock — begin() then allocates from headroom
        # instead of stalling on a stride boundary.
        if self._durable_hwm - self._next_xid < XID_HWM_STRIDE:
            self._force_hwm()

    def _force_hwm(self) -> None:
        """Durably advance the xid high-water mark a stride past the
        next xid.  Called ahead of need (at load, and by piggybacking on
        status forces when headroom runs low), so the hard floor in
        ``begin`` almost never pays this on the allocation path."""
        hwm = self._next_xid + XID_HWM_STRIDE
        self._device.sync_write_meta(XID_HWM_TAG, str(hwm).encode("ascii"))
        self._durable_hwm = hwm
        self.stats.hwm_forces += 1

    # -- group commit ----------------------------------------------------

    def _append_status(self, records: list[tuple[int, str]],
                       ncommits: int, naborts: int | None = None) -> None:
        """Durably append ``records`` as one forced multi-record line.
        ``naborts`` defaults to the non-commit remainder; prepare
        forces pass 0 so P records are counted in their own family."""
        if not records:
            return
        if naborts is None:
            naborts = len(records) - ncommits
        obs = self.obs
        line = " ".join(text for _, text in records) + "\n"
        span = obs.span("txn.status_force", records=len(records),
                        commits=ncommits) \
            if obs is not None and obs.tracer.enabled else NO_SPAN
        with span:
            self._device.sync_append_meta(STATUS_TAG, line.encode("ascii"))
        if obs is not None:
            obs.tx.charge("status_forces")
        self.stats.status_forces += 1
        self.stats.commits_recorded += ncommits
        self.stats.aborts_recorded += naborts
        self.stats.prepares_recorded += len(records) - ncommits - naborts
        if ncommits > self.stats.max_group:
            self.stats.max_group = ncommits
        if ncommits > 1:
            self.stats.group_batches += 1
        for xid, text in records:
            if text.startswith("C ") and xid > self._max_durable_committed:
                self._max_durable_committed = xid
        # The head is already parked in the metadata region: top up the
        # hwm here when headroom runs low, keeping the force out of
        # begin()'s allocation path.
        if self._durable_hwm - self._next_xid < XID_HWM_STRIDE // 4:
            self._force_hwm()

    def _flush_pending(self) -> int:
        """Force every queued commit record in one append (caller holds
        the lock).  Returns the number of records forced."""
        pending, self._pending = self._pending, []
        self._batch_deadline = None
        if pending:
            self._append_status(pending, len(pending))
        return len(pending)

    def _maybe_flush_pending(self) -> None:
        if (self._batch_deadline is not None
                and self._clock.now() >= self._batch_deadline):
            self._flush_pending()

    def flush_commits(self) -> int:
        """Force any queued group-commit records now (close and
        checkpoint call this; benchmarks call it to end a batch).
        Returns the number of commit records forced."""
        with self._lock:
            return self._flush_pending()

    def pending_commit_xids(self) -> list[int]:
        """xids committed in memory whose status records are still
        queued (not yet durable) — the crash explorer uses this to
        compute which commits a crash may legitimately lose."""
        with self._lock:
            return [xid for xid, _ in self._pending]

    # -- transaction lifecycle --------------------------------------------

    def begin(self) -> Transaction:
        with self._lock:
            self._maybe_flush_pending()
            if self._next_xid >= self._durable_hwm:
                # Hard floor: never hand out an xid at or above the
                # durable high-water mark — after a crash it could be
                # reissued and resurrect invisible records.  The
                # ahead-of-need forcing keeps this branch cold.
                self._force_hwm()
            xid = self._next_xid
            self._next_xid += 1
            start = self._clock.now()
            self._records[xid] = _TxRecord(IN_PROGRESS, start)
            return Transaction(xid=xid, start_time=start)

    def commit(self, tx: Transaction) -> None:
        """Record the commit durably.  The caller (the database) must
        have forced the transaction's dirty pages first — commit order
        is data-then-status."""
        tx.require_active()
        with self._lock:
            self._maybe_flush_pending()
            rec = self._records[tx.xid]
            rec.state = COMMITTED
            rec.commit_time = self._clock.now()
            if tx.wrote:
                text = f"C {tx.xid} {rec.start_time!r} {rec.commit_time!r}"
                if self.group_commit_window > 0.0:
                    if not self._pending:
                        self._batch_deadline = (self._clock.now()
                                                + self.group_commit_window)
                    self._pending.append((tx.xid, text))
                else:
                    self._append_status([(tx.xid, text)], 1)
            tx.state = COMMITTED

    def abort(self, tx: Transaction) -> None:
        tx.require_active()
        with self._lock:
            rec = self._records[tx.xid]
            rec.state = ABORTED
            if tx.wrote:
                text = f"A {tx.xid} {rec.start_time!r}"
                self._append_status([(tx.xid, text)], 0)
            tx.state = ABORTED
        for hook in tx.abort_hooks:
            hook()

    # -- two-phase commit -------------------------------------------------

    def prepare(self, tx: Transaction, gid: str) -> None:
        """2PC phase one: durably record that this shard can commit
        ``tx`` whenever the coordinator of global transaction ``gid``
        says so.  The caller must have forced the transaction's dirty
        pages first (data-then-status, exactly like :meth:`commit`).
        The ``P`` record is forced immediately — never queued behind
        the group-commit window — because the coordinator's decision
        depends on it being durable; any queued batch is flushed first
        so the status file stays in append order."""
        tx.require_active()
        if " " in gid or "\n" in gid:
            raise TransactionError(f"malformed gid {gid!r}")
        with self._lock:
            self._flush_pending()
            rec = self._records[tx.xid]
            rec.state = PREPARED
            rec.gid = gid
            if tx.wrote:
                text = f"P {tx.xid} {gid} {rec.start_time!r}"
                self._append_status([(tx.xid, text)], 0, 0)
            tx.state = PREPARED

    def resolve_prepared(self, tx: Transaction, commit: bool) -> None:
        """2PC phase two for a live prepared transaction: force the
        final ``C``/``A`` record per the coordinator's decision.  The
        commit record bypasses the group-commit queue — the decision is
        already durable on the coordinator, so delaying the local
        record would only widen the in-doubt window."""
        if tx.state != PREPARED:
            raise TransactionError(
                f"transaction {tx.xid} is {tx.state}, not prepared")
        with self._lock:
            rec = self._records[tx.xid]
            rec.gid = None
            if commit:
                rec.state = COMMITTED
                rec.commit_time = self._clock.now()
                if tx.wrote:
                    text = (f"C {tx.xid} {rec.start_time!r} "
                            f"{rec.commit_time!r}")
                    self._append_status([(tx.xid, text)], 1)
                tx.state = COMMITTED
            else:
                rec.state = ABORTED
                if tx.wrote:
                    self._append_status(
                        [(tx.xid, f"A {tx.xid} {rec.start_time!r}")], 0)
                tx.state = ABORTED
        if not commit:
            for hook in tx.abort_hooks:
                hook()

    def resolve_in_doubt(self, xid: int, commit: bool) -> None:
        """Recovery-time resolution of an in-doubt transaction (one
        whose ``P`` record survived a crash with no final record).  The
        cluster recovery consults the coordinator's decision log and
        calls this; there is no live :class:`Transaction` object."""
        with self._lock:
            rec = self._records.get(xid)
            if rec is None or rec.state != PREPARED:
                state = "unknown" if rec is None else rec.state
                raise TransactionError(
                    f"transaction {xid} is {state}, not in doubt")
            rec.gid = None
            if commit:
                rec.state = COMMITTED
                rec.commit_time = self._clock.now()
                self._append_status(
                    [(xid, f"C {xid} {rec.start_time!r} "
                           f"{rec.commit_time!r}")], 1)
            else:
                rec.state = ABORTED
                self._append_status(
                    [(xid, f"A {xid} {rec.start_time!r}")], 0)

    def in_doubt(self) -> dict[int, str]:
        """xid → gid for every prepared transaction awaiting its
        coordinator's decision (in-memory or recovered from a ``P``
        record)."""
        with self._lock:
            return {xid: rec.gid for xid, rec in self._records.items()
                    if rec.state == PREPARED and rec.gid is not None}

    # -- visibility queries ---------------------------------------------------

    def state(self, xid: int) -> str:
        rec = self._records.get(xid)
        if rec is None:
            # An xid we have no record of: it was in progress at a crash
            # and never committed — treated as aborted ("any changes
            # that were not committed before a system crash are
            # automatically detected and ignored").
            return ABORTED
        return rec.state

    def is_committed(self, xid: int) -> bool:
        return self.state(xid) == COMMITTED

    def commit_time(self, xid: int) -> float | None:
        rec = self._records.get(xid)
        if rec is None or rec.state != COMMITTED:
            return None
        return rec.commit_time

    def start_time(self, xid: int) -> float | None:
        rec = self._records.get(xid)
        return None if rec is None else rec.start_time

    # -- recovery ----------------------------------------------------------------

    def max_recorded_time(self) -> float:
        """The latest start/commit instant in the status file — a
        reopened database must resume its clock beyond this so new
        commits sort after all recorded history."""
        latest = 0.0
        for rec in self._records.values():
            latest = max(latest, rec.start_time, rec.commit_time or 0.0)
        return latest

    def rebind_device(self, device: DeviceManager) -> None:
        """Point the status file at a different device manager — the
        seam that lets the testkit interpose a fault-injecting proxy
        between the transaction manager and stable storage."""
        self._device = device

    # -- replication ------------------------------------------------------

    def durable_committed_xid(self) -> int:
        """Highest committed xid whose record is durable on the status
        file.  On a primary this is the horizon a replica can catch up
        to; on a replica (whose status file is byte-shipped from the
        primary) it is the published read horizon.  Local read-only
        transactions never touch it — they append no record."""
        with self._lock:
            return self._max_durable_committed

    def refresh(self) -> None:
        """Re-read the status file from the device, replacing the
        in-memory record map — the replica apply loop's visibility
        advance (:mod:`repro.replica`).  Every commit/abort/prepare the
        primary forced since the last refresh becomes visible here in
        one step; duplicate records in the file (a replayed sync round
        re-appends its status lines) collapse because records land in a
        dict keyed by xid, which is what makes re-applying a feed round
        idempotent."""
        with self._lock:
            if self._pending:
                raise TransactionError(
                    "refresh() with queued group-commit records — a "
                    "replica never commits writers, so nothing should "
                    "be pending")
            live = {xid: rec for xid, rec in self._records.items()
                    if rec.state == IN_PROGRESS}
            old_next = self._next_xid
            self._records = {BOOTSTRAP_XID: _TxRecord(COMMITTED, 0.0, 0.0)}
            self._recovered_in_progress = 0
            self._recovered_in_doubt = 0
            self._torn_tail = 0
            self._batch_deadline = None
            self._max_durable_committed = 0
            self._load()
            # Local in-progress (read-only) transactions survive the
            # reload; a shipped record for the same xid wins — it is the
            # primary's, and a colliding local transaction wrote nothing
            # so its visibility outcome is unchanged either way.
            for xid, rec in live.items():
                self._records.setdefault(xid, rec)
            if old_next > self._next_xid:
                self._next_xid = old_next

    def recovery_report(self) -> dict[str, int]:
        """Statistics from the last load — how many transactions in the
        status file were committed/aborted, how many were presumed
        aborted for lack of a record, and whether the status file ended
        in a torn (partially-written) record.  Recovery itself already
        happened inside :meth:`_load`; it is 'essentially instantaneous'
        because it is only this file read.  The crash-schedule explorer
        (:mod:`repro.testkit.explorer`) consumes this after every
        simulated crash."""
        committed = sum(1 for r in self._records.values() if r.state == COMMITTED)
        aborted = sum(1 for r in self._records.values() if r.state == ABORTED)
        return {"committed": committed, "aborted": aborted,
                "presumed_aborted": self._recovered_in_progress,
                "in_doubt": self._recovered_in_doubt,
                "torn_tail": self._torn_tail,
                "next_xid": self._next_xid}
