"""The transaction manager and the status file.

The POSTGRES no-overwrite manager "obviates the need for a conventional
write-ahead log, speeding recovery": committing a transaction requires
only that its commit state be recorded durably in "a special status
file".  Crash recovery is then *reading that file* — "no special log
processing is required at crash recovery time"; records stamped by
transactions with no commit record are simply invisible.

The status file here is an append-only log of commit/abort records,
persisted through the root device's metadata region (so every commit
charges one forced block write near the front of the disk — the head
movement real POSTGRES paid).  Transaction ids are never reused; a
high-water mark is forced periodically so a crash cannot resurrect an
old xid.

Neither POSTGRES 4.0.1 nor Inversion supports nested transactions: "a
single application program may only have one transaction active at any
time" — :class:`TransactionManager` enforces one active transaction per
session object, and :class:`repro.core.library.InversionClient` exposes
exactly the paper's ``p_begin``/``p_commit``/``p_abort``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.devices.base import DeviceManager
from repro.errors import RecoveryError, TransactionError
from repro.sim.clock import SimClock

IN_PROGRESS = "in_progress"
COMMITTED = "committed"
ABORTED = "aborted"

STATUS_TAG = "pg_status"
XID_HWM_TAG = "pg_xid_hwm"
XID_HWM_STRIDE = 64

FIRST_NORMAL_XID = 2
BOOTSTRAP_XID = 1
"""xid stamped on catalog bootstrap rows; always considered committed
at time 0."""


@dataclass
class _TxRecord:
    state: str
    start_time: float
    commit_time: float | None = None


@dataclass
class Transaction:
    """A client-visible transaction handle."""

    xid: int
    start_time: float
    state: str = IN_PROGRESS
    #: lock handles released at commit/abort (two-phase locking).
    held_locks: list = field(default_factory=list)
    #: callbacks run on abort (catalog cache invalidation, etc.).
    abort_hooks: list[Callable[[], None]] = field(default_factory=list)
    #: True once the transaction wrote anything (read-only commits skip
    #: the page force and the status write).
    wrote: bool = False

    def require_active(self) -> None:
        if self.state != IN_PROGRESS:
            raise TransactionError(f"transaction {self.xid} is {self.state}")


class TransactionManager:
    """Allocates xids, records commit state, answers visibility calls."""

    def __init__(self, device: DeviceManager, clock: SimClock) -> None:
        self._device = device
        self._clock = clock
        self._lock = threading.Lock()
        self._records: dict[int, _TxRecord] = {
            BOOTSTRAP_XID: _TxRecord(COMMITTED, 0.0, 0.0),
        }
        self._next_xid = FIRST_NORMAL_XID
        self._recovered_in_progress = 0
        self._torn_tail = 0
        self._load()

    # -- persistence ----------------------------------------------------

    def _parse_record(self, line: str) -> tuple[int, _TxRecord]:
        parts = line.split()
        kind = parts[0]
        xid = int(parts[1])
        if kind == "C":
            return xid, _TxRecord(COMMITTED, float(parts[2]), float(parts[3]))
        if kind == "A":
            return xid, _TxRecord(ABORTED, float(parts[2]))
        raise ValueError(f"unknown record kind {kind!r}")

    def _load(self) -> None:
        raw = self._device.read_meta(STATUS_TAG)
        max_seen = BOOTSTRAP_XID
        if raw:
            lines = raw.decode("ascii", errors="replace").splitlines()
            for lineno, line in enumerate(lines):
                if not line:
                    continue
                try:
                    xid, rec = self._parse_record(line)
                except (IndexError, ValueError) as exc:
                    if lineno == len(lines) - 1 and not raw.endswith(b"\n"):
                        # A torn tail: the record being appended at a
                        # crash made it only partially to the medium
                        # (every complete record ends in a newline).
                        # The transaction never got a durable commit
                        # record, so it is correctly invisible.
                        self._torn_tail = 1
                        continue
                    raise RecoveryError(f"corrupt status record {line!r}") from exc
                self._records[xid] = rec
                max_seen = max(max_seen, xid)
        hwm_raw = self._device.read_meta(XID_HWM_TAG)
        hwm = int(hwm_raw.decode("ascii")) if hwm_raw else FIRST_NORMAL_XID
        self._next_xid = max(max_seen + 1, hwm)
        # xids below the high-water mark with no status record belong to
        # transactions that were in progress (or read-only) at a crash:
        # they are presumed aborted by the visibility rules.
        self._recovered_in_progress = sum(
            1 for xid in range(FIRST_NORMAL_XID, max_seen + 1)
            if xid not in self._records)

    def _force_hwm(self) -> None:
        hwm = self._next_xid + XID_HWM_STRIDE
        self._device.sync_write_meta(XID_HWM_TAG, str(hwm).encode("ascii"))

    # -- transaction lifecycle --------------------------------------------

    def begin(self) -> Transaction:
        with self._lock:
            xid = self._next_xid
            self._next_xid += 1
            if xid % XID_HWM_STRIDE == 0 or xid == FIRST_NORMAL_XID:
                self._force_hwm()
            start = self._clock.now()
            self._records[xid] = _TxRecord(IN_PROGRESS, start)
            return Transaction(xid=xid, start_time=start)

    def commit(self, tx: Transaction) -> None:
        """Record the commit durably.  The caller (the database) must
        have forced the transaction's dirty pages first — commit order
        is data-then-status."""
        tx.require_active()
        with self._lock:
            rec = self._records[tx.xid]
            rec.state = COMMITTED
            rec.commit_time = self._clock.now()
            if tx.wrote:
                line = f"C {tx.xid} {rec.start_time!r} {rec.commit_time!r}\n"
                self._device.sync_append_meta(STATUS_TAG, line.encode("ascii"))
            tx.state = COMMITTED

    def abort(self, tx: Transaction) -> None:
        tx.require_active()
        with self._lock:
            rec = self._records[tx.xid]
            rec.state = ABORTED
            if tx.wrote:
                line = f"A {tx.xid} {rec.start_time!r}\n"
                self._device.sync_append_meta(STATUS_TAG, line.encode("ascii"))
            tx.state = ABORTED
        for hook in tx.abort_hooks:
            hook()

    # -- visibility queries ---------------------------------------------------

    def state(self, xid: int) -> str:
        rec = self._records.get(xid)
        if rec is None:
            # An xid we have no record of: it was in progress at a crash
            # and never committed — treated as aborted ("any changes
            # that were not committed before a system crash are
            # automatically detected and ignored").
            return ABORTED
        return rec.state

    def is_committed(self, xid: int) -> bool:
        return self.state(xid) == COMMITTED

    def commit_time(self, xid: int) -> float | None:
        rec = self._records.get(xid)
        if rec is None or rec.state != COMMITTED:
            return None
        return rec.commit_time

    def start_time(self, xid: int) -> float | None:
        rec = self._records.get(xid)
        return None if rec is None else rec.start_time

    # -- recovery ----------------------------------------------------------------

    def max_recorded_time(self) -> float:
        """The latest start/commit instant in the status file — a
        reopened database must resume its clock beyond this so new
        commits sort after all recorded history."""
        latest = 0.0
        for rec in self._records.values():
            latest = max(latest, rec.start_time, rec.commit_time or 0.0)
        return latest

    def rebind_device(self, device: DeviceManager) -> None:
        """Point the status file at a different device manager — the
        seam that lets the testkit interpose a fault-injecting proxy
        between the transaction manager and stable storage."""
        self._device = device

    def recovery_report(self) -> dict[str, int]:
        """Statistics from the last load — how many transactions in the
        status file were committed/aborted, how many were presumed
        aborted for lack of a record, and whether the status file ended
        in a torn (partially-written) record.  Recovery itself already
        happened inside :meth:`_load`; it is 'essentially instantaneous'
        because it is only this file read.  The crash-schedule explorer
        (:mod:`repro.testkit.explorer`) consumes this after every
        simulated crash."""
        committed = sum(1 for r in self._records.values() if r.state == COMMITTED)
        aborted = sum(1 for r in self._records.values() if r.state == ABORTED)
        return {"committed": committed, "aborted": aborted,
                "presumed_aborted": self._recovered_in_progress,
                "torn_tail": self._torn_tail,
                "next_xid": self._next_xid}
