"""The POSTGRES-like database substrate.

Inversion is "a small set of routines that are compiled into the
POSTGRES data manager"; every service it offers (transactions, time
travel, instant recovery, typed files, queries) is inherited from the
data manager.  This package is a from-scratch reproduction of the
POSTGRES 4.0.1 feature subset Inversion depends on:

- :mod:`repro.db.page` — 8192-byte slotted data pages.
- :mod:`repro.db.tuples` — record schemas and the ``(xmin, xmax)``
  no-overwrite record header.
- :mod:`repro.db.heap` — no-overwrite heap tables.
- :mod:`repro.db.transactions` — the transaction manager and the status
  file that makes recovery instantaneous.
- :mod:`repro.db.snapshot` — visibility rules, including as-of-time-T
  time travel.
- :mod:`repro.db.locks` — two-phase locking with deadlock detection.
- :mod:`repro.db.btree` — page-based B-tree indexes.
- :mod:`repro.db.buffer` — the shared LRU buffer cache.
- :mod:`repro.db.vacuum` — the vacuum cleaner / record archiver.
- :mod:`repro.db.catalog` — system catalogs.
- :mod:`repro.db.funcmgr` — extensible types and user-defined functions.
- :mod:`repro.db.query` — the POSTQUEL-like query language.
- :mod:`repro.db.database` — the assembled database system.
"""

from repro.db.database import Database
from repro.db.tuples import Column, Schema
from repro.db.transactions import Transaction, TransactionManager
from repro.db.snapshot import CurrentSnapshot, AsOfSnapshot

__all__ = [
    "Database",
    "Column",
    "Schema",
    "Transaction",
    "TransactionManager",
    "CurrentSnapshot",
    "AsOfSnapshot",
]
