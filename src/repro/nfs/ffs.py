"""A Fast File System simulator ([MCKU84]).

The baseline's performance character comes from three FFS properties
the paper leans on:

- cylinder-group layout: "data for a single file are kept close
  together", so sequential file I/O is sequential disk I/O;
- little indexing overhead: "the NFS implementation does not maintain
  as much indexing information on the data file, and so can postpone
  writing its index until all data blocks have been written" — inodes
  and indirect blocks are tiny and written after the data;
- the 4 GB practical file-size limit the paper contrasts with
  Inversion's 17.6 TB.

State (inodes, directory, block contents) is held in memory — the
baseline exists to be *measured*, not trusted with data — while every
block access charges the shared :class:`~repro.sim.disk.DiskModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FfsError, FfsFileTooLargeError
from repro.obs.registry import MetricSpec
from repro.sim.clock import SimClock
from repro.sim.disk import BLOCK_SIZE, DiskModel

METRICS = (
    MetricSpec("ffs.data_reads", "counter", "blocks",
               "Data-block reads (cache hits included — each still "
               "returns a block to the caller).",
               "repro.nfs.ffs"),
    MetricSpec("ffs.data_writes", "counter", "blocks",
               "Data-block writes.  Disjoint from ffs.indirect_writes "
               "and ffs.inode_writes — the three sum to total block "
               "writes.",
               "repro.nfs.ffs"),
    MetricSpec("ffs.inode_writes", "counter", "blocks",
               "Forced inode writes to the cylinder-group inode area.",
               "repro.nfs.ffs"),
    MetricSpec("ffs.indirect_writes", "counter", "blocks",
               "Indirect (pointer) block writes.",
               "repro.nfs.ffs"),
    MetricSpec("ffs.cache_hits", "counter", "blocks",
               "Block reads served from the FFS buffer cache.",
               "repro.nfs.ffs"),
)

MAX_FFS_FILE_SIZE = 4 * 1024 ** 3
"""The paper: "the practical upper limit on file sizes in the current
UNIX Fast File System is 4 GBytes"."""

NDIRECT = 12
PTRS_PER_INDIRECT = BLOCK_SIZE // 4

CG_BLOCKS = 2048
"""Blocks per cylinder group."""


@dataclass
class Inode:
    ino: int
    size: int = 0
    cylinder_group: int = 0
    #: logical block index -> physical block address
    blocks: dict[int, int] = field(default_factory=dict)
    #: physical addresses of allocated indirect blocks
    indirect_blocks: list[int] = field(default_factory=list)


@dataclass
class FfsStats:
    data_reads: int = 0
    data_writes: int = 0
    inode_writes: int = 0
    indirect_writes: int = 0
    cache_hits: int = 0


class FastFileSystem:
    """In-memory FFS with a cost-charging block layer and buffer cache."""

    def __init__(self, clock: SimClock, disk: DiskModel,
                 cache_blocks: int = 300, n_cylinder_groups: int = 64) -> None:
        self.clock = clock
        self.disk = disk
        self.stats = FfsStats()
        self.n_cylinder_groups = n_cylinder_groups
        self._inodes: dict[int, Inode] = {}
        self._directory: dict[str, int] = {}
        self._data: dict[int, bytes] = {}  # physical block -> contents
        self._next_ino = 2
        self._cg_cursor = 0
        #: next free data block per cylinder group (block 0 of each
        #: group is its inode area).
        self._cg_free = [cg * CG_BLOCKS + 1 for cg in range(n_cylinder_groups)]
        # Buffer cache: physical block -> dirty flag (contents live in
        # self._data; the cache models which blocks are memory-resident).
        from collections import OrderedDict
        self._cache: "OrderedDict[int, bool]" = OrderedDict()
        self._cache_capacity = cache_blocks

    # -- allocation -------------------------------------------------------

    def _cg_inode_block(self, cg: int) -> int:
        return cg * CG_BLOCKS

    def _allocate_block(self, inode: Inode) -> int:
        cg = inode.cylinder_group
        for probe in range(self.n_cylinder_groups):
            candidate = (cg + probe) % self.n_cylinder_groups
            addr = self._cg_free[candidate]
            if addr < (candidate + 1) * CG_BLOCKS:
                self._cg_free[candidate] += 1
                return addr
        raise FfsError("file system full")

    # -- cache ------------------------------------------------------------------

    def _cache_touch(self, block: int, dirty: bool) -> None:
        entry = self._cache.pop(block, False)
        self._cache[block] = entry or dirty
        while len(self._cache) > self._cache_capacity:
            victim, was_dirty = self._cache.popitem(last=False)
            if was_dirty:
                self.disk.write_block(victim)

    def bind_metrics(self, registry) -> None:
        """Mirror this file system's stats onto a metrics registry.
        The NFS baseline has no Database session, so binding is the
        harness's (or a test's) call."""
        for spec in METRICS:
            attr = spec.name.rsplit(".", 1)[-1]
            registry.register(spec).mirror(
                lambda s=self.stats, a=attr: getattr(s, a))

    def _read_block(self, block: int) -> bytes:
        if block in self._cache:
            self.stats.cache_hits += 1
            self._cache_touch(block, dirty=False)
        else:
            self.disk.read_block(block)
            self._cache_touch(block, dirty=False)
        self.stats.data_reads += 1
        return self._data.get(block, bytes(BLOCK_SIZE))

    def _write_block(self, block: int, data: bytes, sync: bool,
                     dirty: bool = True, is_data: bool = True) -> None:
        """Store a block and charge the device.  ``is_data=False`` for
        metadata blocks whose write is counted by its own counter
        (indirect_writes) — the stats categories stay disjoint so they
        sum to total block writes."""
        self._data[block] = bytes(data)
        if is_data:
            self.stats.data_writes += 1
        if sync:
            self._cache.pop(block, None)
            self.disk.write_block(block)
        else:
            self._cache_touch(block, dirty=dirty)

    def sync_inode(self, inode: Inode) -> None:
        """Force the inode to its cylinder group's inode area."""
        self.disk.write_block(self._cg_inode_block(inode.cylinder_group), 512)
        self.stats.inode_writes += 1

    def flush(self) -> None:
        """Write back every dirty cached block (sync(2))."""
        for block, dirty in list(self._cache.items()):
            if dirty:
                self.disk.write_block(block)
                self._cache[block] = False

    def drop_caches(self) -> None:
        """Flush then empty the cache (benchmark cache flush)."""
        self.flush()
        self._cache.clear()
        self.disk.reset_head()

    # -- namespace -----------------------------------------------------------------

    def create(self, path: str) -> Inode:
        if path in self._directory:
            raise FfsError(f"{path!r} already exists")
        ino = self._next_ino
        self._next_ino += 1
        inode = Inode(ino=ino, cylinder_group=self._cg_cursor)
        self._cg_cursor = (self._cg_cursor + 1) % self.n_cylinder_groups
        self._inodes[ino] = inode
        self._directory[path] = ino
        self.sync_inode(inode)
        return inode

    def lookup(self, path: str) -> Inode:
        ino = self._directory.get(path)
        if ino is None:
            raise FfsError(f"no such file {path!r}")
        return self._inodes[ino]

    def unlink(self, path: str) -> None:
        ino = self._directory.pop(path, None)
        if ino is None:
            raise FfsError(f"no such file {path!r}")
        del self._inodes[ino]

    def exists(self, path: str) -> bool:
        return path in self._directory

    # -- file I/O -------------------------------------------------------------------------

    def _block_for(self, inode: Inode, lblock: int, allocate: bool,
                   sync: bool) -> int | None:
        addr = inode.blocks.get(lblock)
        if addr is None:
            if not allocate:
                return None
            addr = self._allocate_block(inode)
            inode.blocks[lblock] = addr
            # Indirect-block maintenance: one pointer block per
            # PTRS_PER_INDIRECT logical blocks past the direct range.
            if lblock >= NDIRECT and \
                    (lblock - NDIRECT) % PTRS_PER_INDIRECT == 0:
                iaddr = self._allocate_block(inode)
                inode.indirect_blocks.append(iaddr)
                self.stats.indirect_writes += 1
                self._write_block(iaddr, bytes(BLOCK_SIZE), sync,
                                  is_data=False)
        return addr

    def write(self, inode: Inode, offset: int, data: bytes,
              sync: bool = False, dirty: bool = True) -> int:
        """Write, charging per-block I/O; ``sync=True`` forces each
        block to the medium (the stateless-NFS rule).  ``dirty=False``
        caches the contents clean — used when stability is owned by the
        PRESTOserve board, so cache eviction does not double-write."""
        if offset + len(data) > MAX_FFS_FILE_SIZE:
            raise FfsFileTooLargeError(
                "FFS files are limited to 4 GB (the paper's contrast "
                "with Inversion's 17.6 TB)")
        view = memoryview(data)
        pos = offset
        while view.nbytes > 0:
            lblock = pos // BLOCK_SIZE
            within = pos % BLOCK_SIZE
            take = min(BLOCK_SIZE - within, view.nbytes)
            addr = self._block_for(inode, lblock, allocate=True, sync=sync)
            if within == 0 and take == BLOCK_SIZE:
                block = bytes(view[:take])
            else:
                # Read-modify-write: a partial block must be fetched
                # first (a real disk read on a cache miss).
                current = (self._read_block(addr) if addr in self._data
                           else bytes(BLOCK_SIZE))
                block = current[:within] + bytes(view[:take]) \
                    + current[within + take:]
            self._write_block(addr, block, sync, dirty)
            pos += take
            view = view[take:]
        inode.size = max(inode.size, pos)
        return len(data)

    def read(self, inode: Inode, offset: int, nbytes: int) -> bytes:
        nbytes = min(nbytes, max(0, inode.size - offset))
        out = bytearray()
        pos = offset
        remaining = nbytes
        while remaining > 0:
            lblock = pos // BLOCK_SIZE
            within = pos % BLOCK_SIZE
            take = min(BLOCK_SIZE - within, remaining)
            addr = inode.blocks.get(lblock)
            if addr is None:
                out += bytes(take)  # hole
            else:
                out += self._read_block(addr)[within:within + take]
            pos += take
            remaining -= take
        return bytes(out)
