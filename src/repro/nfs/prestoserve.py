"""The PRESTOserve board, as the NFS server sees it.

"PRESTOserve consists of a board containing 1 MByte of battery-backed
RAM and driver software to cache NFS writes in non-volatile memory."
This module adapts the generic :class:`~repro.sim.nvram.NvramCache` to
the NFS server's needs: stable per-block writes, read hits on freshly
written blocks, and inode-update absorption (metadata writes are tiny
and the board soaks them up too).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nfs.ffs import FastFileSystem, Inode
from repro.sim.disk import BLOCK_SIZE
from repro.sim.nvram import NvramCache


@dataclass
class PrestoServe:
    """NVRAM write acceleration for one FFS volume."""

    nvram: NvramCache
    ffs: FastFileSystem

    @classmethod
    def attach(cls, ffs: FastFileSystem,
               capacity_bytes: int = 1_000_000) -> "PrestoServe":
        return cls(NvramCache(clock=ffs.clock, disk=ffs.disk,
                              capacity_bytes=capacity_bytes), ffs)

    def stable_write(self, block_addr: int, nbytes: int = BLOCK_SIZE) -> None:
        """A write is 'stable' once it reaches the board — the NFS
        server may reply without touching the disk."""
        self.nvram.write(block_addr, nbytes)

    def stable_inode_update(self, inode: Inode) -> None:
        """Inode updates (size, block map) are also absorbed; they are
        small, so charge a 512-byte board write."""
        self.nvram.write(self.ffs._cg_inode_block(inode.cylinder_group), 512)

    def covers(self, block_addr: int) -> bool:
        return self.nvram.read_hit(block_addr)

    def drain(self) -> float:
        """Destage everything (the board's background syncer catching
        up, or an orderly shutdown)."""
        return self.nvram.flush()
