"""The comparison baseline: ULTRIX NFS over FFS with PRESTOserve.

The paper measures Inversion against "the ULTRIX 4.2 implementation of
NFS … The NFS implementation on the DECsystem 5900 used a service
called PRESTOserve to speed up writes."  None of that stack exists on
this machine, so this package builds it: a Fast File System simulator
(:mod:`repro.nfs.ffs`), a stateless NFS server that forces every write
to stable storage unless the PRESTOserve NVRAM absorbs it
(:mod:`repro.nfs.server`), and an RPC client over the shared Ethernet
model (:mod:`repro.nfs.client`).
"""

from repro.nfs.ffs import FastFileSystem
from repro.nfs.prestoserve import PrestoServe
from repro.nfs.server import NFSServer
from repro.nfs.client import NFSClient

__all__ = ["FastFileSystem", "PrestoServe", "NFSServer", "NFSClient"]
