"""The NFS client, with biod-style pipelining.

Each protocol operation is one request/response over the simulated
Ethernet (NFS used UDP — lighter per-message cost than Inversion's
TCP; pass a UDP-flavoured :class:`~repro.sim.network.EthernetParams`).
Large application reads and writes are split into 8 KB protocol
transfers.

ULTRIX ran client-side ``biod`` daemons that kept several transfers in
flight, overlapping server disk time with wire time.  The model: for
the 2nd…Nth transfer of one application call, the charged cost is
``max(network round trip, server time)`` rather than their sum — the
pipeline is as fast as its slower stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nfs.server import NFS_MAX_TRANSFER, NFSServer
from repro.sim.network import EthernetParams, NetworkModel

# ULTRIX-era NFS over UDP: cheaper per message than the TCP stack the
# paper blames for Inversion's remote overhead.
UDP_RPC_10MBIT = EthernetParams(
    name="10 Mbit Ethernet + UDP RPC (NFS)",
    bandwidth_bps=1_100_000.0,
    per_message_overhead_s=0.0015,
    propagation_s=0.0002,
)

_REQ_BASE = 96   # NFS headers + file handle + offsets
_RESP_BASE = 96


@dataclass
class NFSClient:
    """Application-facing file operations over the NFS protocol."""

    server: NFSServer
    network: NetworkModel
    pipeline: bool = True  # biod read-ahead / write-behind

    # -- small ops --------------------------------------------------------

    def _rpc(self, method, request_bytes: int, response_bytes: int,
             *args):
        self.network.send(request_bytes)
        result = method(*args)
        self.network.send(response_bytes)
        return result

    def lookup(self, path: str) -> int:
        return self._rpc(self.server.nfs_lookup, _REQ_BASE + len(path),
                         _RESP_BASE, path)

    def create(self, path: str) -> int:
        return self._rpc(self.server.nfs_create, _REQ_BASE + len(path),
                         _RESP_BASE, path)

    def getattr(self, fh: int):
        return self._rpc(self.server.nfs_getattr, _REQ_BASE, _RESP_BASE, fh)

    def remove(self, path: str) -> None:
        self._rpc(self.server.nfs_remove, _REQ_BASE + len(path),
                  _RESP_BASE, path)

    # -- pipelined bulk transfer ---------------------------------------------

    def _transfer(self, pieces, do_one) -> int:
        """Run a sequence of ≤8 KB protocol transfers.  The first is
        serial; subsequent ones, when pipelining, cost
        max(network, server)."""
        total = 0
        clock = self.network.clock
        for i, piece in enumerate(pieces):
            req_bytes, resp_bytes = piece[0], piece[1]
            if not self.pipeline or i == 0:
                self.network.send(req_bytes)
                total += do_one(piece)
                self.network.send(resp_bytes)
            else:
                net_cost = self.network.cost_round_trip(req_bytes, resp_bytes)
                before = clock.now()
                total += do_one(piece)
                server_elapsed = clock.now() - before
                self.network.charge_seconds(
                    max(0.0, net_cost - server_elapsed),
                    messages=2, payload=req_bytes + resp_bytes)
        return total

    def read(self, fh: int, offset: int, nbytes: int) -> bytes:
        """Application read: split into NFS transfers; returns the
        concatenated data."""
        out = bytearray()
        pieces = []
        pos = offset
        remaining = nbytes
        while remaining > 0:
            take = min(NFS_MAX_TRANSFER, remaining)
            pieces.append((_REQ_BASE, _RESP_BASE + take, pos, take))
            pos += take
            remaining -= take

        def do_one(piece) -> int:
            __, ___, p_off, p_len = piece
            data = self.server.nfs_read(fh, p_off, p_len)
            out.extend(data)
            return len(data)

        self._transfer(pieces, do_one)
        return bytes(out)

    def write(self, fh: int, offset: int, data: bytes) -> int:
        """Application write: split into stable NFS writes."""
        pieces = []
        pos = 0
        while pos < len(data):
            take = min(NFS_MAX_TRANSFER, len(data) - pos)
            pieces.append((_REQ_BASE + take, _RESP_BASE,
                           offset + pos, data[pos:pos + take]))
            pos += take

        def do_one(piece) -> int:
            __, ___, p_off, p_data = piece
            return self.server.nfs_write(fh, p_off, p_data)

        return self._transfer(pieces, do_one)
