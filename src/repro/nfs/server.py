"""A stateless NFS server ([SAND85]).

"To guarantee that NFS servers remain stateless, NFS must force every
write to stable storage synchronously" — the defining cost rule of the
baseline.  With PRESTOserve attached, a write is stable once it lands
on the board; without it, every write (and the inode update describing
it) is forced to disk before the reply — which is why the paper notes
"Inversion should have much better performance than NFS without
non-volatile RAM".

Handles are inode numbers (a stateless server keeps no open-file
state).  The server performs no readahead of its own; client-side
biod pipelining is modelled in :mod:`repro.nfs.client`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NfsError
from repro.nfs.ffs import FastFileSystem, Inode
from repro.nfs.prestoserve import PrestoServe
from repro.sim.cpu import CpuModel
from repro.sim.disk import BLOCK_SIZE

NFS_MAX_TRANSFER = 8192
"""NFS v2 transfer-size ceiling — large client requests are split."""


@dataclass
class NfsAttr:
    ino: int
    size: int


class NFSServer:
    """The NFS protocol operations the benchmark exercises."""

    def __init__(self, ffs: FastFileSystem,
                 prestoserve: PrestoServe | None = None,
                 cpu: CpuModel | None = None) -> None:
        self.ffs = ffs
        self.prestoserve = prestoserve
        self.cpu = cpu

    def _dispatch_cost(self) -> None:
        if self.cpu is not None:
            self.cpu.rpc_dispatch()

    def _inode(self, fh: int) -> Inode:
        inode = self.ffs._inodes.get(fh)
        if inode is None:
            raise NfsError(f"stale file handle {fh}")
        return inode

    # -- protocol operations ------------------------------------------------

    def nfs_lookup(self, path: str) -> int:
        self._dispatch_cost()
        return self.ffs.lookup(path).ino

    def nfs_create(self, path: str) -> int:
        self._dispatch_cost()
        inode = self.ffs.create(path)
        return inode.ino

    def nfs_getattr(self, fh: int) -> NfsAttr:
        self._dispatch_cost()
        inode = self._inode(fh)
        return NfsAttr(ino=inode.ino, size=inode.size)

    def nfs_read(self, fh: int, offset: int, nbytes: int) -> bytes:
        if nbytes > NFS_MAX_TRANSFER:
            raise NfsError(f"read of {nbytes} exceeds the 8 KB NFS transfer")
        self._dispatch_cost()
        inode = self._inode(fh)
        # Freshly written data may still be on the PRESTOserve board.
        if self.prestoserve is not None:
            lblock = offset // BLOCK_SIZE
            addr = inode.blocks.get(lblock)
            if addr is not None and self.prestoserve.covers(addr):
                data = self.ffs._data.get(addr, bytes(BLOCK_SIZE))
                within = offset % BLOCK_SIZE
                return data[within:within + min(nbytes,
                                                max(0, inode.size - offset))]
        return self.ffs.read(inode, offset, nbytes)

    def nfs_write(self, fh: int, offset: int, data: bytes) -> int:
        """Stable write: PRESTOserve absorbs it, or the disk eats a
        forced write plus the inode update."""
        if len(data) > NFS_MAX_TRANSFER:
            raise NfsError(f"write of {len(data)} exceeds the 8 KB NFS transfer")
        self._dispatch_cost()
        inode = self._inode(fh)
        if self.prestoserve is not None:
            # Contents enter the FFS cache clean — stability is owned by
            # the board, and the board's destage is the only disk write.
            self.ffs.write(inode, offset, data, sync=False, dirty=False)
            lblock = offset // BLOCK_SIZE
            addr = inode.blocks[lblock]
            self.prestoserve.stable_write(addr, min(len(data), BLOCK_SIZE))
            self.prestoserve.stable_inode_update(inode)
        else:
            self.ffs.write(inode, offset, data, sync=True)
            self.ffs.sync_inode(inode)
        return len(data)

    def nfs_remove(self, path: str) -> None:
        self._dispatch_cost()
        self.ffs.unlink(path)
