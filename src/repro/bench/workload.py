"""The paper's benchmark workload over pluggable file-system adapters.

An adapter exposes create/open/read-at/write-at plus cache flushing;
:class:`Benchmark` runs the nine operations of Table 3 against it and
reports simulated elapsed seconds.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.sim.clock import SimClock

PAGE_IO = 8192


@dataclass(frozen=True)
class BenchmarkSizes:
    """Workload dimensions; ``scaled`` shrinks them for fast tests.

    ``io_size=None`` defers to the adapter: "the page size was chosen
    to be efficient for the file system under test" — 8192 bytes for
    NFS/FFS, one chunk (8064) for Inversion."""

    file_size: int = 25 * 1000 * 1000
    transfer_size: int = 1 * 1000 * 1000
    io_size: int | None = None
    random_byte_ops: int = 20

    @classmethod
    def scaled(cls, factor: float) -> "BenchmarkSizes":
        return cls(
            file_size=max(4 * PAGE_IO, int(25_000_000 * factor)),
            transfer_size=max(2 * PAGE_IO, int(1_000_000 * factor)),
            io_size=None,
            random_byte_ops=4,
        )


class FsAdapter(ABC):
    """What the benchmark needs from a file system under test."""

    clock: SimClock

    @property
    def preferred_io_size(self) -> int:
        """The 'page-sized unit' efficient for this file system."""
        return PAGE_IO

    @abstractmethod
    def create_file(self, name: str) -> object:
        """Create an empty file; returns an opaque handle."""

    @abstractmethod
    def open_file(self, name: str) -> object: ...

    @abstractmethod
    def write_at(self, handle: object, offset: int, data: bytes) -> None: ...

    @abstractmethod
    def read_at(self, handle: object, offset: int, nbytes: int) -> bytes: ...

    @abstractmethod
    def flush_caches(self) -> None:
        """'All caches were flushed before each test.'"""

    def begin(self) -> None:
        """Start a client transaction (no-op where unsupported)."""

    def commit(self) -> None:
        """Commit the client transaction (no-op where unsupported)."""


@dataclass
class Benchmark:
    """Runs the paper's operations and collects elapsed times."""

    adapter: FsAdapter
    sizes: BenchmarkSizes = field(default_factory=BenchmarkSizes)
    seed: int = 20250705
    results: dict[str, float] = field(default_factory=dict)
    _handle: object = None

    FILE_NAME = "/bench25mb"

    @property
    def io_size(self) -> int:
        return self.sizes.io_size or self.adapter.preferred_io_size

    # -- internals -----------------------------------------------------------

    def _timed(self, name: str, op) -> float:
        self.adapter.flush_caches()
        start = self.adapter.clock.now()
        op()
        elapsed = self.adapter.clock.now() - start
        self.results[name] = elapsed
        return elapsed

    def _payload(self, nbytes: int, tag: int) -> bytes:
        # Deterministic, mildly varied contents.
        unit = bytes((tag + i) % 251 for i in range(256))
        reps = nbytes // len(unit) + 1
        return (unit * reps)[:nbytes]

    def _random_offsets(self, count: int, span: int, align: int,
                        salt: str) -> list[int]:
        rng = random.Random(f"{self.seed}:{salt}")
        slots = max(1, span // align)
        return [rng.randrange(slots) * align for _ in range(count)]

    # -- the nine operations -------------------------------------------------------

    def op_create(self) -> float:
        """Create the 25 MB file with sequential page-sized writes.
        No explicit transaction: like an ordinary application copying
        data in, each library call commits by itself."""
        def run() -> None:
            self._handle = self.adapter.create_file(self.FILE_NAME)
            pos = 0
            while pos < self.sizes.file_size:
                n = min(self.io_size, self.sizes.file_size - pos)
                self.adapter.write_at(self._handle, pos, self._payload(n, pos))
                pos += n
        return self._timed("create", run)

    def _read_test(self, name: str, body) -> float:
        """Read tests run inside one client transaction, so the open
        handle persists across the loop (the paper's tests were 'read
        1 MByte', not 'reopen the file 128 times')."""
        def run() -> None:
            self.adapter.begin()
            body()
            self.adapter.commit()
        return self._timed(name, run)

    def op_read_single_byte(self) -> float:
        offsets = self._random_offsets(self.sizes.random_byte_ops,
                                       self.sizes.file_size, 1, "rbyte")

        def run() -> None:
            for off in offsets:
                self.adapter.read_at(self._handle, off, 1)
        total = self._read_test("read_byte_total", run)
        per_op = total / len(offsets)
        self.results["read_byte"] = per_op
        return per_op

    def op_write_single_byte(self) -> float:
        offsets = self._random_offsets(self.sizes.random_byte_ops,
                                       self.sizes.file_size, 1, "wbyte")
        total = self._write_test("write_byte_total",
                                 [(off, 1) for off in offsets])
        per_op = total / len(offsets)
        self.results["write_byte"] = per_op
        return per_op

    def op_read_single(self) -> float:
        """Read 1 MB in a single large transfer (and verify it really
        is the data written at creation — a benchmark that times empty
        reads measures nothing)."""
        def body() -> None:
            data = self.adapter.read_at(self._handle, 0,
                                        self.sizes.transfer_size)
            if len(data) != self.sizes.transfer_size:
                raise AssertionError(
                    f"short read: {len(data)} != {self.sizes.transfer_size}")
            expected = self._payload(self.io_size, 0)
            if data[:64] != expected[:64]:
                raise AssertionError("read returned wrong contents")
        return self._read_test("read_single", body)

    def op_read_seq_pages(self) -> float:
        def body() -> None:
            pos = 0
            while pos < self.sizes.transfer_size:
                n = min(self.io_size, self.sizes.transfer_size - pos)
                data = self.adapter.read_at(self._handle, pos, n)
                if len(data) != n:
                    raise AssertionError(f"short read at {pos}")
                pos += n
        return self._read_test("read_seq_pages", body)

    def op_read_random_pages(self) -> float:
        count = self.sizes.transfer_size // self.io_size
        offsets = self._random_offsets(count, self.sizes.file_size,
                                       self.io_size, "rpages")

        def body() -> None:
            for off in offsets:
                want = min(self.io_size, self.sizes.file_size - off)
                data = self.adapter.read_at(self._handle, off, self.io_size)
                if len(data) < want:
                    raise AssertionError(f"short read at {off}")
        return self._read_test("read_random_pages", body)

    def _write_test(self, name: str, offsets_and_sizes) -> float:
        """Write tests run under the client's transaction: "Inversion …
        can obey the transaction constraints imposed by the client
        program, and commit a large number of writes simultaneously."""
        def run() -> None:
            self.adapter.begin()
            for off, n in offsets_and_sizes:
                self.adapter.write_at(self._handle, off,
                                      self._payload(n, off ^ 0x55))
            self.adapter.commit()
        return self._timed(name, run)

    def op_write_single(self) -> float:
        return self._write_test("write_single",
                                [(0, self.sizes.transfer_size)])

    def op_write_seq_pages(self) -> float:
        pieces = []
        pos = 0
        while pos < self.sizes.transfer_size:
            n = min(self.io_size, self.sizes.transfer_size - pos)
            pieces.append((pos, n))
            pos += n
        return self._write_test("write_seq_pages", pieces)

    def op_write_random_pages(self) -> float:
        count = self.sizes.transfer_size // self.io_size
        offsets = self._random_offsets(count, self.sizes.file_size,
                                       self.io_size, "wpages")
        return self._write_test("write_random_pages",
                                [(off, self.io_size) for off in offsets])

    # -- drivers --------------------------------------------------------------------------

    ALL_OPS = ("create", "read_byte", "write_byte", "read_single",
               "read_seq_pages", "read_random_pages", "write_single",
               "write_seq_pages", "write_random_pages")

    def run_all(self) -> dict[str, float]:
        self.op_create()
        self.op_read_single_byte()
        self.op_write_single_byte()
        self.op_read_single()
        self.op_read_seq_pages()
        self.op_read_random_pages()
        self.op_write_single()
        self.op_write_seq_pages()
        self.op_write_random_pages()
        return {op: self.results[op] for op in self.ALL_OPS}


# ---------------------------------------------------------------------------
# adapters
# ---------------------------------------------------------------------------


class InversionAdapter(FsAdapter):
    """Benchmark adapter over a p_* client (local or remote)."""

    @property
    def preferred_io_size(self) -> int:
        from repro.core.constants import CHUNK_SIZE
        return CHUNK_SIZE

    def __init__(self, client, db) -> None:
        self.client = client
        self.db = db
        self.clock = db.clock
        # Track each descriptor's position so sequential access skips
        # redundant p_lseek round trips, as a real client library would.
        self._pos: dict[object, int] = {}

    def create_file(self, name: str):
        fd = self.client.p_creat(name)
        self._pos[fd] = 0
        return fd

    def open_file(self, name: str):
        fd = self.client.p_open(name, 2)
        self._pos[fd] = 0
        return fd

    def _seek_to(self, handle, offset: int) -> None:
        if self._pos.get(handle) != offset:
            self.client.p_lseek(handle, offset >> 32, offset & 0xFFFFFFFF, 0)
            self._pos[handle] = offset

    def write_at(self, handle, offset: int, data: bytes) -> None:
        self._seek_to(handle, offset)
        self.client.p_write(handle, data)
        self._pos[handle] = offset + len(data)

    def read_at(self, handle, offset: int, nbytes: int) -> bytes:
        self._seek_to(handle, offset)
        data = self.client.p_read(handle, nbytes)
        self._pos[handle] = offset + len(data)
        return data

    def begin(self) -> None:
        self.client.p_begin()

    def commit(self) -> None:
        self.client.p_commit()

    def flush_caches(self) -> None:
        self.db.flush_caches()


class NfsAdapter(FsAdapter):
    """Benchmark adapter over the NFS client."""

    def __init__(self, client, ffs, prestoserve=None) -> None:
        self.client = client
        self.ffs = ffs
        self.prestoserve = prestoserve
        self.clock = ffs.clock

    def create_file(self, name: str):
        return self.client.create(name)

    def open_file(self, name: str):
        return self.client.lookup(name)

    def write_at(self, handle, offset: int, data: bytes) -> None:
        self.client.write(handle, offset, data)

    def read_at(self, handle, offset: int, nbytes: int) -> bytes:
        return self.client.read(handle, offset, nbytes)

    def flush_caches(self) -> None:
        # The client cache is not modelled; flush the server's FFS
        # cache.  The PRESTOserve board is *not* flushed mid-benchmark —
        # the paper's point is that "the whole 1 MByte write fits in the
        # PRESTOserve cache, and is not flushed to disk".
        self.ffs.drop_caches()
