"""The multi-user scale experiment (BENCH_multiuser.json).

The paper positions Inversion as a shared server ("a standard database
two-phase locking protocol allows concurrent access to files"), but
every Table 3 number is a single client.  This benchmark measures what
N concurrent client sessions do to the write path, driving them
through the deterministic multi-session scheduler (:mod:`repro.sched`)
on one simulated clock:

- **disjoint-file scaling** — N clients each committing small writes
  to their own pre-created file.  The locks never conflict; what
  scales is the *commit machinery*: the scheduler's commit clustering
  (writes run first, then the gated commits drain back-to-back) means
  the burst's first ``flush_all`` sweeps every session's dirty pages
  in one sorted pass — the later committers find their pages already
  clean, the shared file-attribute heap and index pages are written
  once per burst instead of once per transaction, the batched commit
  records share one status force, and the disk head stops
  ping-ponging between the data region and the status area once per
  transaction;
- **hot-file contention** — the same shape plus every transaction
  also rewriting one shared file, serializing on its exclusive
  chunk-table lock.  This exercises the scheduler's park/unpark path
  and the fairness guard; the interesting outputs are the wait
  profile (``lock.waits``, wait-second extremes, per-session max park)
  and the bounded-starvation verdict, not throughput.

Every number is read from the simulated clock and the metrics
registry, and the scheduler is seeded, so the JSON is byte-identical
across runs — CI asserts both the scaling floor and determinism (two
seeded runs must produce identical event-trace hashes).

Run directly::

    PYTHONPATH=src python -m repro.bench.multiuser [output.json]
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import sys
import tempfile

from repro.core.filesystem import InversionFS
from repro.core.library import InversionClient
from repro.core.server import InversionServer
from repro.db.database import Database
from repro.sched import Apply, MultiUserScheduler, Txn

#: client counts swept by the scaling curve.
CLIENT_COUNTS = (1, 2, 4, 8)

#: committing transactions per client (every configuration does the
#: same per-client work, so throughput comparisons are fair).
TXNS_PER_CLIENT = 8

#: bytes written per transaction to the client's own file.
WRITE_BYTES = 8000

#: bytes written per transaction to the shared hot file.
HOT_BYTES = 2000

#: group-commit window (simulated seconds).  Chosen between the
#: commit-cluster spacing and a single client's inter-commit time: one
#: client's next commit arrives after the window has expired (≈ one
#: force per commit, the paper's behaviour), while interleaved clients
#: commit close enough together that their records batch into shared
#: forces.
GROUP_WINDOW = 0.05

SCHED_SEED = 0


def _payload(tag: str, size: int) -> bytes:
    """Deterministic bytes, independent of PYTHONHASHSEED."""
    out = bytearray()
    counter = 0
    while len(out) < size:
        out += hashlib.sha256(f"multiuser:{tag}:{counter}".encode()).digest()
        counter += 1
    return bytes(out[:size])


def _write_op(path: str, tag: str, size: int):
    data = _payload(tag, size)
    return Apply(f"write {path}",
                 lambda fs, tx, path=path, data=data:
                 fs.write_file(tx, path, data))


def _client_program(client: int, hot: bool) -> list[Txn]:
    """TXNS_PER_CLIENT committing transactions: each rewrites the
    client's own file, and in the hot configuration also the shared
    file (own file first everywhere — a single lock order, so the hot
    lock produces queueing, not deadlock)."""
    program = []
    for t in range(TXNS_PER_CLIENT):
        items = [_write_op(f"/f{client}", f"c{client}t{t}", WRITE_BYTES)]
        if hot:
            items.append(_write_op("/hot", f"h{client}t{t}", HOT_BYTES))
        program.append(Txn(items, tag=f"c{client}t{t}"))
    return program


def _build(nclients: int, window: float):
    workdir = tempfile.mkdtemp(prefix="inversion-multiuser-")
    db = Database.create(os.path.join(workdir, "db"))
    fs = InversionFS.mkfs(db)
    # Fixtures outside the measured window: every per-client file plus
    # the shared hot file exist and hold one committed chunk, so the
    # measured transactions are pure overwrites (no naming inserts).
    setup = InversionClient(fs)
    setup.p_begin()
    for c in range(nclients):
        fd = setup.p_creat(f"/f{c}")
        setup.p_write(fd, _payload(f"seed{c}", WRITE_BYTES))
        setup.p_close(fd)
    fd = setup.p_creat("/hot")
    setup.p_write(fd, _payload("seedhot", HOT_BYTES))
    setup.p_close(fd)
    setup.p_commit()
    db.tm.flush_commits()
    db.flush_caches()
    db.tm.group_commit_window = window

    def cleanup() -> None:
        db.close()
        shutil.rmtree(workdir, ignore_errors=True)
    return db, fs, cleanup


def run_clients(nclients: int, hot: bool, window: float = GROUP_WINDOW) -> dict:
    """One configuration: ``nclients`` sessions, TXNS_PER_CLIENT
    commits each, on the shared simulated clock.  Returns throughput,
    the contention profile, and the scheduler's fairness report."""
    db, fs, cleanup = _build(nclients, window)
    try:
        server = InversionServer(fs)
        sched = MultiUserScheduler(server, seed=SCHED_SEED)
        try:
            for c in range(nclients):
                sched.add_session(_client_program(c, hot), name=f"c{c}")
            disk = db.switch.get("magnetic0").disk.stats
            forces0 = db.tm.stats.status_forces
            commits0 = db.tm.stats.commits_recorded
            writes0 = disk.writes
            seeks0 = disk.seeks
            t0 = db.clock.now()
            fairness = sched.run()
            db.tm.flush_commits()
            elapsed = db.clock.now() - t0
        finally:
            sched.close()
        ntxns = nclients * TXNS_PER_CLIENT
        stats = db.tm.stats
        locks = db.locks.stats
        wait_hist = db.obs.metrics.value("lock.wait_seconds")
        forces = stats.status_forces - forces0
        return {
            "clients": nclients,
            "transactions": ntxns,
            "elapsed_s": elapsed,
            "txns_per_sec": ntxns / elapsed,
            "status_forces": forces,
            "commits_per_force": (stats.commits_recorded - commits0) / forces,
            "device_writes": disk.writes - writes0,
            "device_seeks": disk.seeks - seeks0,
            "trace_hash": sched.trace_hash(),
            "contention": {
                "lock_waits": locks.waits,
                "lock_deadlocks": locks.deadlocks,
                "lock_timeouts": locks.timeouts,
                "wait_seconds_total": (wait_hist.sum if wait_hist.count
                                       else 0.0),
                "wait_seconds_max": (wait_hist.max if wait_hist.count
                                     else 0.0),
                "sched_slices": sched.stats.slices,
                "sched_context_switches": sched.stats.context_switches,
                "sched_lock_parks": sched.stats.lock_parks,
                "sched_retries": sched.stats.retries,
            },
            "fairness": {
                "max_ready_wait_s": fairness["max_ready_wait_s"],
                "max_park_s": fairness["max_park_s"],
                "fairness_bound_s": fairness["fairness_bound_s"],
                "starved": fairness["starved"],
            },
        }
    finally:
        cleanup()


def run_multiuser() -> dict:
    """The full experiment: the disjoint-file scaling curve and the
    hot-file contention profile, each at 1/2/4/8 clients."""
    disjoint = [run_clients(n, hot=False) for n in CLIENT_COUNTS]
    hot = [run_clients(n, hot=True) for n in CLIENT_COUNTS]
    base = disjoint[0]["txns_per_sec"]
    return {
        "experiment": ("multi-user scale: throughput vs client count on "
                       "disjoint files and on a shared hot file, "
                       "deterministic scheduler"),
        "group_commit_window": GROUP_WINDOW,
        "txns_per_client": TXNS_PER_CLIENT,
        "sched_seed": SCHED_SEED,
        "disjoint": disjoint,
        "hot": hot,
        "scaling": {
            "txns_per_sec_by_clients": {
                str(r["clients"]): r["txns_per_sec"] for r in disjoint},
            "speedup_8_over_1": disjoint[-1]["txns_per_sec"] / base,
        },
    }


def main(argv: list[str]) -> int:
    out = argv[0] if argv else "BENCH_multiuser.json"
    results = run_multiuser()
    with open(out, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    s = results["scaling"]
    hot8 = results["hot"][-1]
    print(f"wrote {out}: disjoint 1->8 clients "
          f"{s['speedup_8_over_1']:.2f}x throughput, hot-file max wait "
          f"{hot8['fairness']['max_park_s']:.4f}s "
          f"(parks={hot8['contention']['sched_lock_parks']})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
