"""The commit/write-path fast-path experiment (BENCH_commitio.json).

The write-path twin of :mod:`repro.bench.seqio`: measures (1) group
commit — many small writing transactions with the per-commit status
force amortized across a batch — against the paper's one-force-per-
commit behaviour, (2) coalesced write-back — the 1 MB sequential write
with adjacent dirty pages batched into multi-page device writes —
against page-at-a-time flushing, and (3) the client/server multi-chunk
write RPC against the paper's one-RPC-per-``p_write`` protocol.

All numbers come from the simulated clock and operation counters, so
CI asserts on them exactly.

Run directly::

    PYTHONPATH=src python -m repro.bench.commitio [output.json]
"""

from __future__ import annotations

import json
import sys

from repro.bench.harness import build_inversion_cs, build_inversion_sp
from repro.core.constants import CHUNK_SIZE
from repro.db.tuples import Column, Schema

#: transactions in the group-commit batch experiment.
GROUP_TXNS = 16

#: an effectively unbounded window: the batch is forced only by the
#: explicit flush that ends the measurement (one append for the lot).
GROUP_WINDOW = 1.0e9

#: the 1 MB sequential-write shape (Figure 6 / Table 3 write columns).
WRITE_CHUNKS = 128
WRITE_FILE_SIZE = WRITE_CHUNKS * CHUNK_SIZE

#: chunks shipped per write RPC in the batched client configuration.
RPC_BATCH_CHUNKS = 16

FILE_NAME = "/commitio"


def _payload(nbytes: int, offset: int) -> bytes:
    unit = b"fedcba9876543210"
    reps = nbytes // len(unit) + 2
    return (unit * reps)[offset % len(unit):][:nbytes]


def _disk_stats(db):
    return db.switch.get("magnetic0").disk.stats


#: the small-transaction shape: one short row inserted per commit, the
#: TP-style workload where the forced status append dominates.
GROUP_SCHEMA = Schema([Column("seq", "int4"), Column("note", "bytea")])


def run_group(window: float) -> dict:
    """GROUP_TXNS small writing transactions, each inserting one short
    row into an unindexed table; the run ends with an explicit flush so
    queued records are durable and both configurations are measured to
    the same durability point."""
    built = build_inversion_sp(group_commit_window=window)
    try:
        adapter = built.adapter
        db = adapter.db
        tx = db.begin()
        table = db.create_table(tx, "bench_commit", GROUP_SCHEMA)
        db.commit(tx)
        adapter.flush_caches()
        disk = _disk_stats(db)
        forces0 = db.tm.stats.status_forces
        hwm0 = db.tm.stats.hwm_forces
        commits0 = db.tm.stats.commits_recorded
        writes0 = disk.writes
        t0 = adapter.clock.now()
        for i in range(GROUP_TXNS):
            tx = db.begin()
            table.insert(tx, (i, _payload(64, i)))
            db.commit(tx)
        db.tm.flush_commits()
        elapsed = adapter.clock.now() - t0
        stats = db.tm.stats
        return {
            "group_commit_window": window,
            "transactions": GROUP_TXNS,
            "elapsed_s": elapsed,
            "commits_per_sec": GROUP_TXNS / elapsed,
            "status_forces": stats.status_forces - forces0,
            "hwm_forces": stats.hwm_forces - hwm0,
            "commits_recorded": stats.commits_recorded - commits0,
            "commits_per_force": ((stats.commits_recorded - commits0)
                                  / (stats.status_forces - forces0)),
            "group_batches": stats.group_batches,
            "max_group": stats.max_group,
            "device_writes": disk.writes - writes0,
        }
    finally:
        built.close()


def _sequential_write(adapter, handle) -> None:
    adapter.begin()
    pos = 0
    while pos < WRITE_FILE_SIZE:
        n = min(CHUNK_SIZE, WRITE_FILE_SIZE - pos)
        adapter.write_at(handle, pos, _payload(n, pos))
        pos += n
    adapter.commit()


def run_writeback(coalesce: bool) -> dict:
    """One 1 MB sequential write transaction; counts the device write
    operations its commit-time flush pays, with and without coalescing
    adjacent dirty pages into batched writes."""
    built = build_inversion_sp(coalesce_writes=coalesce)
    try:
        adapter = built.adapter
        handle = adapter.create_file(FILE_NAME)
        adapter.flush_caches()
        db = adapter.db
        disk = _disk_stats(db)
        buf = db.buffers.stats
        writes0 = disk.writes
        fw0, bw0, ch0 = (buf.forced_writes, buf.batched_writes,
                         buf.write_coalesce_hits)
        t0 = adapter.clock.now()
        _sequential_write(adapter, handle)
        return {
            "coalesce_writes": coalesce,
            "elapsed_s": adapter.clock.now() - t0,
            "device_writes": disk.writes - writes0,
            "forced_writes": buf.forced_writes - fw0,
            "batched_writes": buf.batched_writes - bw0,
            "write_coalesce_hits": buf.write_coalesce_hits - ch0,
        }
    finally:
        built.close()


def run_cs_write(write_batch_chunks: int) -> dict:
    """The 1 MB sequential write over the client/server protocol; with
    batching, consecutive ``p_write`` calls ship as one RPC per
    ``write_batch_chunks`` chunks."""
    built = build_inversion_cs(write_batch_chunks=write_batch_chunks)
    try:
        adapter = built.adapter
        handle = adapter.create_file(FILE_NAME)
        adapter.flush_caches()
        client = adapter.client
        net0 = client.network.stats.messages
        t0 = adapter.clock.now()
        _sequential_write(adapter, handle)
        return {
            "write_batch_chunks": write_batch_chunks,
            "elapsed_s": adapter.clock.now() - t0,
            "net_messages": client.network.stats.messages - net0,
            "batched_writes": client.batched_writes,
            "buffered_writes": client.buffered_writes,
        }
    finally:
        built.close()


def run_commitio() -> dict:
    """The full experiment: group commit before/after, write-back
    coalescing before/after, client/server write batching before/after."""
    group_before = run_group(window=0.0)
    group_after = run_group(window=GROUP_WINDOW)
    wb_before = run_writeback(coalesce=False)
    wb_after = run_writeback(coalesce=True)
    cs_before = run_cs_write(write_batch_chunks=1)
    cs_after = run_cs_write(write_batch_chunks=RPC_BATCH_CHUNKS)
    return {
        "experiment": ("group commit + batched write-back, "
                       "16 small commits and 1 MB sequential write"),
        "group_commit": {
            "before": group_before,
            "after": group_after,
            "speedup": (group_after["commits_per_sec"]
                        / group_before["commits_per_sec"]),
        },
        "writeback": {
            "before": wb_before,
            "after": wb_after,
            "write_op_ratio": (wb_before["device_writes"]
                               / wb_after["device_writes"]),
        },
        "cs_write": {
            "before": cs_before,
            "after": cs_after,
            "speedup": cs_before["elapsed_s"] / cs_after["elapsed_s"],
        },
    }


def main(argv: list[str]) -> int:
    out = argv[0] if argv else "BENCH_commitio.json"
    results = run_commitio()
    with open(out, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    print(f"wrote {out}: group commit {results['group_commit']['speedup']:.2f}x "
          f"commits/sec, write-back {results['writeback']['write_op_ratio']:.2f}x "
          f"fewer device writes, cs write {results['cs_write']['speedup']:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
