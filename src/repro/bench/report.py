"""Reporting: the paper's numbers next to ours.

``PAPER_TABLE3`` transcribes Table 3 of the paper ("Elapsed time in
seconds for benchmark tests in three configurations").  Figures 3–6
are bar charts of subsets of the same nine operations, so each figure
formatter selects its rows.
"""

from __future__ import annotations

from repro.bench.workload import Benchmark

# Table 3, verbatim from the paper (seconds).
PAPER_TABLE3: dict[str, dict[str, float]] = {
    "inversion_cs": {
        "create": 141.5, "read_single": 3.4, "read_seq_pages": 4.8,
        "read_random_pages": 5.5, "write_single": 4.6,
        "write_seq_pages": 5.6, "write_random_pages": 6.0,
        "read_byte": 0.02, "write_byte": 0.03,
    },
    "nfs": {
        "create": 50.6, "read_single": 2.8, "read_seq_pages": 2.2,
        "read_random_pages": 2.4, "write_single": 2.0,
        "write_seq_pages": 1.7, "write_random_pages": 1.7,
        "read_byte": 0.01, "write_byte": 0.02,
    },
    "inversion_sp": {
        "create": 111.6, "read_single": 0.4, "read_seq_pages": 0.4,
        "read_random_pages": 0.8, "write_single": 1.4,
        "write_seq_pages": 1.4, "write_random_pages": 2.9,
        "read_byte": 0.01, "write_byte": 0.02,
    },
}

OP_LABELS = {
    "create": "Create 25MByte file",
    "read_single": "Single 1MByte read",
    "read_seq_pages": "Page-sized sequential 1MByte read",
    "read_random_pages": "Page-sized random 1MByte read",
    "write_single": "Single 1MByte write",
    "write_seq_pages": "Page-sized sequential 1MByte write",
    "write_random_pages": "Page-sized random 1MByte write",
    "read_byte": "Read single byte",
    "write_byte": "Write single byte",
}

FIGURES = {
    "fig3": ("Figure 3: 25MByte file creation times",
             ("create",), ("inversion_cs", "nfs")),
    "fig4": ("Figure 4: Random byte access",
             ("read_byte", "write_byte"), ("inversion_cs", "nfs")),
    "fig5": ("Figure 5: Read throughput",
             ("read_single", "read_seq_pages", "read_random_pages"),
             ("inversion_cs", "nfs")),
    "fig6": ("Figure 6: Write throughput",
             ("write_single", "write_seq_pages", "write_random_pages"),
             ("inversion_cs", "nfs")),
}

CONFIG_LABELS = {
    "inversion_cs": "Inversion client/server",
    "nfs": "ULTRIX NFS",
    "inversion_sp": "Inversion single process",
}


def shape_ratios(results: dict[str, dict[str, float]],
                 ops: tuple[str, ...] | None = None) -> dict[str, float]:
    """Inversion-client/server ÷ NFS elapsed-time ratios (>1 means NFS
    is faster; the paper's "30% to 80% of the throughput" is a ratio
    of 1.25–3.3 here)."""
    ops = ops or tuple(Benchmark.ALL_OPS)
    out = {}
    for op in ops:
        nfs = results["nfs"].get(op)
        inv = results["inversion_cs"].get(op)
        if nfs and inv:
            out[op] = inv / nfs
    return out


def format_figure(fig: str, results: dict[str, dict[str, float]],
                  scale_note: str = "") -> str:
    """Render one figure's data as text bars with the paper's numbers."""
    title, ops, configs = FIGURES[fig]
    lines = [title + (f"   [{scale_note}]" if scale_note else ""), "=" * len(title)]
    width = 40
    longest = max((results[c][op] for c in configs for op in ops
                   if op in results.get(c, {})), default=1.0)
    for op in ops:
        lines.append(f"\n{OP_LABELS[op]}:")
        for config in configs:
            ours = results.get(config, {}).get(op)
            paper = PAPER_TABLE3[config].get(op)
            if ours is None:
                continue
            bar = "#" * max(1, int(width * ours / longest)) if longest else ""
            lines.append(f"  {CONFIG_LABELS[config]:<26} {ours:9.3f} s  {bar}")
            lines.append(f"  {'  (paper)':<26} {paper:9.3f} s")
    ratios = shape_ratios(results, ops)
    if ratios:
        lines.append("\nInversion(c/s) / NFS elapsed-time ratios "
                     "(paper ratio in brackets):")
        for op, ratio in ratios.items():
            paper_ratio = (PAPER_TABLE3["inversion_cs"][op]
                           / PAPER_TABLE3["nfs"][op])
            lines.append(f"  {OP_LABELS[op]:<38} {ratio:5.2f}  [{paper_ratio:5.2f}]")
    return "\n".join(lines)


def format_table3(results: dict[str, dict[str, float]],
                  scale_note: str = "") -> str:
    """Render the full Table 3 comparison."""
    header = ("Table 3: Elapsed time in seconds for benchmark tests in "
              "three configurations")
    if scale_note:
        header += f"   [{scale_note}]"
    lines = [header, "=" * 78]
    cols = ("inversion_cs", "nfs", "inversion_sp")
    lines.append(f"{'Operation':<38}" + "".join(
        f"{CONFIG_LABELS[c].split()[-1][:10]:>13}" for c in cols))
    for op in Benchmark.ALL_OPS:
        ours = "".join(
            f"{results.get(c, {}).get(op, float('nan')):>13.3f}" for c in cols)
        paper = "".join(
            f"{PAPER_TABLE3[c].get(op, float('nan')):>13.3f}" for c in cols)
        lines.append(f"{OP_LABELS[op]:<38}{ours}")
        lines.append(f"{'  (paper)':<38}{paper}")
    return "\n".join(lines)


# -- per-transaction cost breakdown (repro.obs accounting) ---------------

#: column headers for :data:`repro.obs.FIELDS`, in the same order.
TX_COLUMNS = (
    ("buffer_hits", "buf.hit"),
    ("buffer_misses", "buf.miss"),
    ("device_read_ops", "rd.ops"),
    ("device_pages_read", "rd.pages"),
    ("device_write_ops", "wr.ops"),
    ("device_pages_written", "wr.pages"),
    ("lock_waits", "lk.waits"),
    ("lock_wait_seconds", "lk.secs"),
    ("status_forces", "forces"),
    ("client_cache_hits", "cc.hits"),
)


def _tx_cell(value: float) -> str:
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.3f}"
    return str(int(value))


def format_tx_breakdown(breakdown: dict[int, dict[str, float]],
                        title: str = "Per-transaction cost breakdown") -> str:
    """Render a :meth:`repro.obs.TxAccountant.breakdown` as a table:
    one row per xid (in begin order), one column per accounting field,
    plus a totals row.  This is the paper's Table 4 idea — where did
    the time go? — at transaction granularity."""
    lines = [title, "=" * len(title)]
    header = f"{'xid':>6}" + "".join(f"{h:>10}" for _f, h in TX_COLUMNS)
    lines.append(header)
    totals = {field: 0 for field, _h in TX_COLUMNS}
    for xid, row in breakdown.items():
        cells = "".join(f"{_tx_cell(row.get(f, 0)):>10}" for f, _h in TX_COLUMNS)
        lines.append(f"{xid:>6}{cells}")
        for field, _h in TX_COLUMNS:
            totals[field] += row.get(field, 0)
    lines.append("-" * len(header))
    lines.append(f"{'total':>6}"
                 + "".join(f"{_tx_cell(totals[f]):>10}" for f, _h in TX_COLUMNS))
    return "\n".join(lines)


def tx_smoke_breakdown():
    """Run a tiny Inversion workload in a temp directory and return its
    accountant breakdown — a handful of transactions touching the
    buffer cache, the devices, the status file and the client cache.
    CI renders this through :func:`format_tx_breakdown` to prove the
    accounting path stays wired end to end.

    The workload runs over the client/server protocol with the
    lease-coherent cache enabled so the ``cc.hits`` column is
    exercised: the file is written, read once from the server (filling
    the cache), then re-read after an absorbed SEEK_SET — those five
    cached chunks are charged back to the transaction whose device
    reads filled them."""
    import shutil
    import tempfile

    from repro.core.client import RemoteInversionClient
    from repro.core.filesystem import InversionFS
    from repro.core.server import InversionServer
    from repro.db.database import Database
    from repro.sim.clock import SimClock
    from repro.sim.network import ETHERNET_10MBIT, NetworkModel

    tmp = tempfile.mkdtemp(prefix="repro-tx-smoke-")
    try:
        clock = SimClock()
        db = Database.create(tmp + "/db", clock=clock)
        fs = InversionFS.mkfs(db)
        server = InversionServer(fs)
        network = NetworkModel(clock=clock, params=ETHERNET_10MBIT)
        client = RemoteInversionClient(server, network,
                                       cache_paths=64, cache_chunks=32)
        client.p_mkdir("/smoke")
        fd = client.p_creat("/smoke/a.txt")
        client.p_write(fd, b"x" * 40_000)
        client.p_close(fd)
        client.p_stat("/smoke/a.txt")
        fd = client.p_open("/smoke/a.txt", 0)
        client.p_read(fd, 40_000)
        client.p_lseek(fd, 0, 0)
        client.p_read(fd, 40_000)
        client.p_close(fd)
        client.close()
        breakdown = db.obs.tx.breakdown()
        db.close()
        return breakdown
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


# -- cProfile helper -----------------------------------------------------

#: benchmark entry points runnable under ``--profile``; each is a
#: zero-argument callable importing lazily so the profiler never
#: charges module import time to the workload.
PROFILE_TARGETS = {
    "seqio": lambda: __import__("repro.bench.seqio", fromlist=["main"])
    .main(["/dev/null"]),
    "commitio": lambda: __import__("repro.bench.commitio", fromlist=["main"])
    .main(["/dev/null"]),
    "multiuser": lambda: __import__("repro.bench.multiuser", fromlist=["main"])
    .main(["/dev/null"]),
    "multishard": lambda: __import__(
        "repro.bench.multishard", fromlist=["main"]).main(["/dev/null"]),
    "cachedio": lambda: __import__("repro.bench.cachedio", fromlist=["main"])
    .main(["/dev/null"]),
    "hotpath": lambda: __import__("repro.bench.hotpath", fromlist=["main"])
    .main(["/dev/null", "--smoke"]),
}


def profile_bench(name: str, sort: str = "cumulative", limit: int = 40,
                  out: str | None = None) -> int:
    """Run one benchmark under :mod:`cProfile` and print the hottest
    functions — the profiling workflow behind the hot-path work: find
    where the wall-clock goes *before* deciding what to flatten (see
    EXPERIMENTS.md, "Wall-clock methodology")."""
    import cProfile
    import pstats

    if name not in PROFILE_TARGETS:
        print(f"unknown benchmark {name!r}; choose from "
              f"{', '.join(sorted(PROFILE_TARGETS))}")
        return 2
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        PROFILE_TARGETS[name]()
    finally:
        profiler.disable()
    if out:
        profiler.dump_stats(out)
        print(f"wrote raw profile to {out} "
              f"(inspect with python -m pstats {out})")
    stats = pstats.Stats(profiler)
    stats.sort_stats(sort)
    stats.print_stats(limit)
    return 0


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.report",
        description="Render accounting reports outside a full bench run.")
    parser.add_argument("--tx-smoke", action="store_true",
                        help="run a tiny workload and print its "
                             "per-transaction cost breakdown")
    parser.add_argument("--profile", metavar="BENCH",
                        choices=sorted(PROFILE_TARGETS),
                        help="run one benchmark under cProfile and print "
                             "the hottest functions")
    parser.add_argument("--sort", default="cumulative",
                        help="pstats sort key for --profile "
                             "(default: cumulative; try tottime)")
    parser.add_argument("--limit", type=int, default=40,
                        help="rows of profile output to print")
    parser.add_argument("--out", default=None,
                        help="also dump the raw profile to this file")
    args = parser.parse_args(argv)
    if args.profile:
        return profile_bench(args.profile, sort=args.sort,
                             limit=args.limit, out=args.out)
    if args.tx_smoke:
        breakdown = tx_smoke_breakdown()
        if not breakdown:
            print("no transactions were accounted", flush=True)
            return 1
        print(format_tx_breakdown(breakdown))
        return 0
    parser.print_help()
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
