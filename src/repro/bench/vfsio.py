"""The transactional-VFS experiment (BENCH_vfsio.json).

Two workloads over the :class:`repro.vfs.api.VFS` surface:

* **structural** — an 8 MB chunk-aligned file copied two ways on the
  single-process configuration: physically (read every byte, write
  every byte) and by reference (``vfs.reflink`` — chunk-pointer rows,
  no payload movement), plus a by-reference ``concat`` and ``slice`` of
  the same source.  The claim measured: the by-reference path is at
  least **10×** faster in simulated time and moves no data chunks
  (``chunks_materialized == 0``, device page writes a sliver of the
  file size).

* **namespace** — a 512-file flat directory over the client/server
  protocol, listed whole (one unbounded reply) and in bounded pages
  via the readdir cookie protocol.  Paged listing costs more messages
  but every reply is bounded by the page size — the property that
  makes a million-file directory listable at all.

The numbers are deterministic — simulated clock, message and page
counters, never wall time — so CI asserts byte-identical double runs.

Run directly::

    PYTHONPATH=src python -m repro.bench.vfsio [output.json]
"""

from __future__ import annotations

import json
import sys

from repro.bench.harness import build_inversion_cs, build_inversion_sp
from repro.core.constants import CHUNK_SIZE
from repro.testkit.workload import payload
from repro.vfs.api import VFS
from repro.vfs.scenarios import populate_flat_dir

#: the structural-op source: 8 MB, chunk-aligned.
STRUCT_CHUNKS = 1024
STRUCT_SIZE = STRUCT_CHUNKS * CHUNK_SIZE

#: the flat directory, full versus paged listing.
NAMESPACE_FILES = 512
NAMESPACE_PAGE = 128

#: by-reference copies must beat the physical path by at least this
#: factor in simulated time (the CI gate).
MIN_SPEEDUP = 10.0

#: buffer pool sized to the structural working set (source + physical
#: copy), so the comparison isolates what each path *writes*: with both
#: paths reading warm, the physical copy still pays ~1 040 data-page
#: writes while the reflink pays only its pointer-row metadata.
STRUCT_BUFFERS = 3072


def _pages_written(db) -> float:
    return db.obs.metrics.get("device.pages_written").total()


def run_structural() -> dict:
    """Physical copy versus reflink/concat/slice of the same source."""
    built = build_inversion_sp(buffer_pages=STRUCT_BUFFERS)
    try:
        client = built.adapter.client
        db = built.adapter.db
        clock = built.adapter.clock
        vfs = VFS(client, obs=db.obs)
        data = payload(0, "struct", STRUCT_SIZE)
        vfs.write_file("/data", data)

        # Physical: read every byte, write every byte, commit.
        t0, p0 = clock.now(), _pages_written(db)
        with vfs.transaction():
            vfs.write_file("/copy.phys", vfs.read_file("/data"))
        phys = {"elapsed_s": clock.now() - t0,
                "pages_written": _pages_written(db) - p0}

        # By reference: chunk-pointer rows only.
        t0, p0 = clock.now(), _pages_written(db)
        with vfs.transaction():
            referenced, materialized = vfs.reflink("/data", "/copy.ref")
        ref = {"elapsed_s": clock.now() - t0,
               "pages_written": _pages_written(db) - p0,
               "chunks_referenced": referenced,
               "chunks_materialized": materialized}

        if materialized != 0 or referenced != STRUCT_CHUNKS:
            raise AssertionError(
                f"reflink moved data: {referenced} referenced, "
                f"{materialized} materialized")
        if ref["pages_written"] > phys["pages_written"] / 20:
            raise AssertionError(
                f"reflink wrote {ref['pages_written']} pages against the "
                f"physical copy's {phys['pages_written']} — that is data "
                f"movement, not metadata")
        if vfs.read_file("/copy.ref") != data:
            raise AssertionError("reflink copy reads back wrong bytes")

        t0, p0 = clock.now(), _pages_written(db)
        cat_ref, cat_mat = vfs.concat(["/data", "/copy.ref"], "/cat")
        concat = {"elapsed_s": clock.now() - t0,
                  "pages_written": _pages_written(db) - p0,
                  "chunks_referenced": cat_ref,
                  "chunks_materialized": cat_mat}

        half = (STRUCT_CHUNKS // 2) * CHUNK_SIZE
        t0, p0 = clock.now(), _pages_written(db)
        sl_ref, sl_mat = vfs.slice("/data", 0, half + 200, "/slice")
        sliced = {"elapsed_s": clock.now() - t0,
                  "pages_written": _pages_written(db) - p0,
                  "chunks_referenced": sl_ref,
                  "chunks_materialized": sl_mat}

        speedup = phys["elapsed_s"] / ref["elapsed_s"]
        if speedup < MIN_SPEEDUP:
            raise AssertionError(
                f"reflink speedup {speedup:.1f}x below the {MIN_SPEEDUP}x "
                f"gate")
        return {
            "file_size": STRUCT_SIZE,
            "chunks": STRUCT_CHUNKS,
            "physical_copy": phys,
            "reflink": ref,
            "concat": concat,
            "slice": sliced,
            "speedup": speedup,
        }
    finally:
        built.close()


def run_namespace() -> dict:
    """Full versus paged listing of a 512-file flat directory over
    the client/server protocol."""
    built = build_inversion_cs()
    try:
        client = built.adapter.client
        clock = built.adapter.clock
        vfs = VFS(client)
        populate_flat_dir(vfs, NAMESPACE_FILES, per_tx=128, size=0)

        m0, t0 = client.network.stats.messages, clock.now()
        full = vfs.readdir("/flat")
        full_stats = {"elapsed_s": clock.now() - t0,
                      "net_messages": client.network.stats.messages - m0,
                      "names": len(full),
                      "max_reply_names": len(full)}

        m0, t0 = client.network.stats.messages, clock.now()
        paged, pages, biggest = [], 0, 0
        cookie = None
        while True:
            names, cookie = vfs.readdir_page("/flat", cookie,
                                             NAMESPACE_PAGE)
            paged.extend(names)
            pages += 1
            biggest = max(biggest, len(names))
            if cookie is None:
                break
        paged_stats = {"elapsed_s": clock.now() - t0,
                       "net_messages": client.network.stats.messages - m0,
                       "names": len(paged),
                       "pages": pages,
                       "page_size": NAMESPACE_PAGE,
                       "max_reply_names": biggest}

        if paged != full:
            raise AssertionError("paged listing diverges from full listing")
        if biggest > NAMESPACE_PAGE:
            raise AssertionError(
                f"a page carried {biggest} names, over the "
                f"{NAMESPACE_PAGE} bound")
        return {
            "files": NAMESPACE_FILES,
            "full": full_stats,
            "paged": paged_stats,
        }
    finally:
        built.close()


def run_vfsio() -> dict:
    """The full experiment: by-reference structural ops plus the
    large-namespace paged listing."""
    return {
        "experiment": ("transactional VFS: by-reference copy/concat/slice "
                       "versus physical copy, and paged large-directory "
                       "listing"),
        "structural": run_structural(),
        "namespace": run_namespace(),
    }


def main(argv: list[str]) -> int:
    out = argv[0] if argv else "BENCH_vfsio.json"
    results = run_vfsio()
    with open(out, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    s = results["structural"]
    n = results["namespace"]
    print(f"wrote {out}: reflink speedup {s['speedup']:.1f}x "
          f"({s['physical_copy']['elapsed_s']:.3f}s -> "
          f"{s['reflink']['elapsed_s']:.4f}s, "
          f"{s['reflink']['chunks_materialized']} chunks materialized); "
          f"paged listing {n['paged']['pages']} pages of "
          f"<= {n['paged']['page_size']} names")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
