"""CLI: regenerate the paper's figures and table.

Usage::

    python -m repro.bench all            # everything, full size
    python -m repro.bench fig3           # one figure
    python -m repro.bench table3 --scale 0.2
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import run_all_configs
from repro.bench.report import FIGURES, format_figure, format_table3
from repro.bench.workload import BenchmarkSizes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the Inversion paper's figures and Table 3.")
    parser.add_argument("target",
                        choices=["all", "table3", *FIGURES],
                        help="which figure/table to regenerate")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor (1.0 = the paper's "
                             "25 MB file and 1 MB transfers)")
    args = parser.parse_args(argv)

    sizes = (BenchmarkSizes() if args.scale >= 1.0
             else BenchmarkSizes.scaled(args.scale))
    note = "" if args.scale >= 1.0 else f"scaled x{args.scale}"
    results = run_all_configs(sizes)

    if args.target in ("all", "table3"):
        print(format_table3(results, note))
        print()
    if args.target == "all":
        for fig in FIGURES:
            print(format_figure(fig, results, note))
            print()
    elif args.target in FIGURES:
        print(format_figure(args.target, results, note))
    return 0


if __name__ == "__main__":
    sys.exit(main())
