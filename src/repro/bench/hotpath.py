"""Wall-clock hot-path benchmark (BENCH_hotpath.json).

Every other benchmark in this tree reports *simulated* cost — device
model seconds and operation counters that CI asserts on exactly.  This
one is different: it times the real Python hot paths that the
simulated numbers deliberately ignore, and gates the zero-copy page
codec, the cached B-tree descents and the buffer lookup fast path
against in-bench reimplementations of the code they replaced.

Four families:

* **page_codec** — record access on a slotted page through the cached
  header mirror, the lazily decoded slot directory and the long-lived
  ``memoryview``, versus the pre-cache path (a fresh ``struct`` decode
  of header and slot per access, record copied out of ``bytes(buf)``).
* **btree_descent** — repeated point lookups in a populated B-tree
  with the per-relation descent hints warm, versus the same lookups
  with the hints and the per-page decoded-key caches cleared before
  every search (every descent re-decodes every visited node).
* **buffer_lookup** — ``BufferCache.get_page`` hits, versus a
  reimplementation of the old lookup body (per-call key list built
  then tupled, charge fields looked up one at a time).
* **e2e_write** — a single-process Inversion client writing and
  reading back a 1 MiB file, wall-clock end to end.

Wall-clock rates vary machine to machine, so the JSON splits in two:
a ``deterministic`` section (operation counts, cache-counter deltas
and payload checksums from fixed-size runs — byte-identical across
runs and asserted by CI's double-run ``cmp``) and a ``wallclock``
section carrying the ops/s and before/after ratios.  ``--smoke``
writes the deterministic section only.

Run directly::

    PYTHONPATH=src python -m repro.bench.hotpath [output.json] [--smoke]
"""

from __future__ import annotations

import hashlib
import json
import struct
import sys
import time

from repro.bench.harness import build_inversion_sp
from repro.db.btree import BTree
from repro.db.buffer import BufferCache
from repro.db.heap import TID
from repro.db.page import HEADER_FMT, HEADER_SIZE, SLOT_FMT, SLOT_SIZE, Page
from repro.db.transactions import Transaction
from repro.devices.memdisk import MemDisk
from repro.devices.switch import DeviceSwitch
from repro.sim.clock import SimClock

_RAW_HEADER = struct.Struct(HEADER_FMT)
_RAW_SLOT = struct.Struct(SLOT_FMT)

#: fixed sizes for the deterministic section (identical in full and
#: --smoke runs, so the committed artifact can be checked against a
#: smoke run byte for byte).
DET_RECORDS = 64
DET_PAGE_OPS = 2_000
DET_KEYS = 3_000
DET_SEARCHES = 2_000
DET_FILE_SIZE = 64 * 1024

#: wall-clock op counts (full runs only).
WC_PAGE_OPS = 200_000
WC_SEARCHES = 50_000
WC_BUFFER_OPS = 300_000
E2E_FILE_SIZE = 1 << 20


def _payload(nbytes: int) -> bytes:
    unit = b"0123456789abcdef"
    return (unit * (nbytes // len(unit) + 1))[:nbytes]


def _time(fn, ops: int, repeats: int = 3) -> tuple[float, float]:
    """Best of ``repeats`` runs of ``fn`` — (elapsed_s, ops_per_s)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best, ops / best if best > 0 else float("inf")


# -- page codec -------------------------------------------------------


def _codec_page() -> Page:
    page = Page()
    for i in range(DET_RECORDS):
        page.add_record(bytes([i % 251]) * (20 + i % 40))
    return page


def _legacy_get_record(buf: bytearray, idx: int) -> bytes:
    """The pre-cache record access, verbatim in shape: the ``nslots``
    property re-decoded the whole header through a module-level
    ``struct`` call with a format string, the slot was unpacked the
    same way, and the record was copied twice (bytearray slice, then
    ``bytes``)."""
    nslots = struct.unpack_from(HEADER_FMT, buf, 0)[0]
    if not (0 <= idx < nslots):
        raise IndexError(idx)
    offset, length = struct.unpack_from(
        SLOT_FMT, buf, HEADER_SIZE + idx * SLOT_SIZE)
    if offset == 0:
        raise IndexError(idx)
    return bytes(buf[offset:offset + length])


def run_page_codec(ops: int) -> dict:
    page = _codec_page()
    n = DET_RECORDS

    def cached_copy() -> None:
        get = page.get_record
        for i in range(ops):
            get(i % n)

    def cached_view() -> None:
        # The hot-reader API: B-tree key decode and tuple unpack read
        # straight from the page's long-lived memoryview.
        view = page.record_view
        for i in range(ops):
            view(i % n)

    def legacy() -> None:
        buf = page.buf
        for i in range(ops):
            _legacy_get_record(buf, i % n)

    _, copy_rate = _time(cached_copy, ops)
    _, view_rate = _time(cached_view, ops)
    _, legacy_rate = _time(legacy, ops)
    return {
        "ops": ops,
        "records": n,
        "copy_ops_per_s": round(copy_rate),
        "view_ops_per_s": round(view_rate),
        "legacy_ops_per_s": round(legacy_rate),
        "speedup": round(view_rate / legacy_rate, 2),
        "speedup_copy": round(copy_rate / legacy_rate, 2),
    }


def det_page_codec() -> dict:
    """Fixed op sequence; counters and bytes, no clocks."""
    baseline = Page.header_cache_invalidations
    page = _codec_page()
    digest = hashlib.sha256()
    for i in range(DET_PAGE_OPS):
        rec = page.get_record(i % DET_RECORDS)
        assert rec == _legacy_get_record(page.buf, i % DET_RECORDS)
        digest.update(rec)
        if i % 500 == 499:
            page.compact()
    return {
        "ops": DET_PAGE_OPS,
        "records": DET_RECORDS,
        "invalidations": Page.header_cache_invalidations - baseline,
        "sha256": digest.hexdigest(),
    }


# -- B-tree descent ---------------------------------------------------


def _make_btree(nkeys: int) -> BTree:
    clock = SimClock()
    switch = DeviceSwitch()
    switch.register(MemDisk("mem0", clock))
    switch.get("mem0").create_relation("idx")
    buffers = BufferCache(switch, capacity=512)
    bt = BTree.create(buffers, "mem0", "idx")
    tx = Transaction(xid=7, start_time=0.0)
    for i in range(nkeys):
        bt.insert(tx, (i,), TID(i, 0))
    return bt


def _clear_descent_caches(bt: BTree) -> None:
    """Restore the pre-cache world for one search: no remembered walk,
    no per-node decoded keys."""
    bt.buffers.descent_hints.clear()
    for frame in bt.buffers._frames.values():
        frame.page.cache = None


def run_btree_descent(searches: int) -> dict:
    bt = _make_btree(DET_KEYS)
    keys = [(i * 37) % DET_KEYS for i in range(searches)]
    hot = [(i % 16,) for i in range(searches)]  # fast-path friendly

    def warm() -> None:
        search = bt.search
        for k in hot:
            search(k)

    def cold() -> None:
        search = bt.search
        for k in keys:
            _clear_descent_caches(bt)
            search((k,))

    warm_s, warm_rate = _time(warm, searches)
    cold_s, cold_rate = _time(cold, searches)
    return {
        "keys": DET_KEYS,
        "searches": searches,
        "depth": bt.depth(),
        "warm_descents_per_s": round(warm_rate),
        "cold_descents_per_s": round(cold_rate),
        "speedup": round(warm_rate / cold_rate, 2),
    }


def det_btree_descent() -> dict:
    bt = _make_btree(DET_KEYS)
    d0, f0 = BTree.total_descents, BTree.descent_fastpath_hits
    misses = 0
    for i in range(DET_SEARCHES):
        key = (i % 16,)
        if bt.search(key) != [TID(key[0], 0)]:
            misses += 1
    return {
        "keys": DET_KEYS,
        "searches": DET_SEARCHES,
        "depth": bt.depth(),
        "descents": BTree.total_descents - d0,
        "fastpath_hits": BTree.descent_fastpath_hits - f0,
        "wrong_results": misses,
    }


# -- buffer lookups ---------------------------------------------------


def _make_buffers(pages: int) -> tuple[BufferCache, int]:
    clock = SimClock()
    switch = DeviceSwitch()
    switch.register(MemDisk("mem0", clock))
    switch.get("mem0").create_relation("rel")
    buffers = BufferCache(switch, capacity=pages + 8)
    for _ in range(pages):
        buffers.new_page("mem0", "rel")
    return buffers, pages


def run_buffer_lookup(ops: int) -> dict:
    buffers, pages = _make_buffers(64)

    def fast() -> None:
        get = buffers.get_page
        for i in range(ops):
            get("mem0", "rel", i % pages)

    def _legacy_get_page(dev_name: str, relname: str, pageno: int,
                         prefetched: set) -> Page:
        # The pre-PR hit path, method calls and all: streak
        # bookkeeping via _note_access, frame probe, and the per-hit
        # membership test against the separate ``_prefetched`` set
        # that the frame flag replaced.
        key = (dev_name, relname, pageno)
        obs = buffers.obs
        buffers._note_access((dev_name, relname), pageno)
        frame = buffers._frames.get(key)
        if frame is not None:
            buffers.stats.hits += 1
            if obs is not None:
                obs.tx.charge("buffer_hits")
            if key in prefetched:
                prefetched.discard(key)
                buffers.stats.prefetch_hits += 1
            buffers._frames.move_to_end(key)
            return frame.page
        raise AssertionError("legacy loop must stay resident")

    def legacy() -> None:
        prefetched: set = set()
        for i in range(ops):
            _legacy_get_page("mem0", "rel", i % pages, prefetched)

    fast_s, fast_rate = _time(fast, ops)
    legacy_s, legacy_rate = _time(legacy, ops)
    return {
        "ops": ops,
        "resident_pages": pages,
        "fast_ops_per_s": round(fast_rate),
        "legacy_ops_per_s": round(legacy_rate),
        "speedup": round(fast_rate / legacy_rate, 2),
    }


def det_buffer_lookup() -> dict:
    buffers, pages = _make_buffers(64)
    h0, m0 = buffers.stats.hits, buffers.stats.misses
    for i in range(DET_PAGE_OPS):
        buffers.get_page("mem0", "rel", i % pages)
    return {
        "ops": DET_PAGE_OPS,
        "resident_pages": pages,
        "hits": buffers.stats.hits - h0,
        "misses": buffers.stats.misses - m0,
    }


# -- end-to-end write -------------------------------------------------


def _e2e(nbytes: int, timed: bool) -> dict:
    built = build_inversion_sp()
    try:
        client = built.adapter.client
        clock = built.adapter.db.clock
        data = _payload(nbytes)
        client.p_mkdir("/bench")
        t0 = time.perf_counter()
        s0 = clock.now()
        fd = client.p_creat("/bench/blob")
        client.p_write(fd, data)
        client.p_close(fd)
        write_wall = time.perf_counter() - t0
        t1 = time.perf_counter()
        fd = client.p_open("/bench/blob", 0)
        back = client.p_read(fd, nbytes)
        client.p_close(fd)
        read_wall = time.perf_counter() - t1
        if back != data:
            raise AssertionError("read back the wrong bytes")
        out = {
            "file_size": nbytes,
            "sim_elapsed_s": round(clock.now() - s0, 9),
            "sha256": hashlib.sha256(back).hexdigest(),
        }
        if timed:
            out["write_wall_s"] = round(write_wall, 4)
            out["read_wall_s"] = round(read_wall, 4)
            out["write_mb_per_s"] = round(nbytes / (1 << 20) / write_wall, 2)
        return out
    finally:
        built.close()


# -- entry points -----------------------------------------------------


def run_deterministic() -> dict:
    return {
        "page_codec": det_page_codec(),
        "btree_descent": det_btree_descent(),
        "buffer_lookup": det_buffer_lookup(),
        "e2e_write": _e2e(DET_FILE_SIZE, timed=False),
    }


def run_hotpath(smoke: bool = False) -> dict:
    results = {
        "experiment": ("python hot-path wall clock: zero-copy page codec, "
                       "cached B-tree descents, buffer lookup fast path"),
        "deterministic": run_deterministic(),
    }
    if not smoke:
        results["wallclock"] = {
            "page_codec": run_page_codec(WC_PAGE_OPS),
            "btree_descent": run_btree_descent(WC_SEARCHES),
            "buffer_lookup": run_buffer_lookup(WC_BUFFER_OPS),
            "e2e_write": _e2e(E2E_FILE_SIZE, timed=True),
        }
    return results


def main(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    args = [a for a in argv if a != "--smoke"]
    out = args[0] if args else "BENCH_hotpath.json"
    results = run_hotpath(smoke=smoke)
    with open(out, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2, sort_keys=True)
        f.write("\n")
    det = results["deterministic"]
    line = (f"wrote {out}: {det['btree_descent']['fastpath_hits']}"
            f"/{det['btree_descent']['descents']} fast-path descents, "
            f"{det['page_codec']['invalidations']} page invalidations")
    if not smoke:
        wc = results["wallclock"]
        line += (f"; codec {wc['page_codec']['speedup']}x, "
                 f"descent {wc['btree_descent']['speedup']}x, "
                 f"buffer {wc['buffer_lookup']['speedup']}x, "
                 f"1MiB write {wc['e2e_write']['write_wall_s']}s")
    print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
