"""The sequential-I/O fast-path experiment (BENCH_seqio.json).

Measures the Figure 5 sequential-read configuration — a 1 MB file read
in 8 KB chunks over the client/server protocol — before and after the
multi-chunk read RPC, plus the single-process read with full counter
instrumentation (B-tree descents, device read operations, buffer
prefetching).  The numbers are deterministic: they come from the
simulated clock and operation counters, never from wall time, so CI can
assert on them exactly.

Run directly::

    PYTHONPATH=src python -m repro.bench.seqio [output.json]
"""

from __future__ import annotations

import json
import sys

from repro.bench.harness import build_inversion_cs, build_inversion_sp
from repro.core.constants import CHUNK_SIZE
from repro.db.btree import BTree

#: the Figure 5 shape at CI scale: 1 MB of chunks, read sequentially.
SEQIO_CHUNKS = 128
SEQIO_FILE_SIZE = SEQIO_CHUNKS * CHUNK_SIZE

#: chunks fetched per read RPC in the batched configuration.
RPC_BATCH_CHUNKS = 16

FILE_NAME = "/seqio1mb"


def _payload(nbytes: int, offset: int) -> bytes:
    unit = b"0123456789abcdef"
    reps = nbytes // len(unit) + 2
    return (unit * reps)[offset % len(unit):][:nbytes]


def _populate(adapter) -> object:
    """Create the test file with sequential chunk-sized writes; returns
    the open handle."""
    handle = adapter.create_file(FILE_NAME)
    pos = 0
    while pos < SEQIO_FILE_SIZE:
        n = min(CHUNK_SIZE, SEQIO_FILE_SIZE - pos)
        adapter.write_at(handle, pos, _payload(n, pos))
        pos += n
    return handle


def _sequential_read(adapter, handle) -> None:
    """Read the whole file back in chunk-sized requests, verifying the
    bytes (a benchmark that times empty reads measures nothing)."""
    adapter.begin()
    pos = 0
    while pos < SEQIO_FILE_SIZE:
        n = min(CHUNK_SIZE, SEQIO_FILE_SIZE - pos)
        data = adapter.read_at(handle, pos, n)
        if len(data) != n:
            raise AssertionError(f"short read at {pos}: {len(data)} != {n}")
        if data != _payload(n, pos):
            raise AssertionError(f"wrong bytes at {pos}")
        pos += n
    adapter.commit()


def _disk_stats(db):
    # The harness builds a single-device database rooted at magnetic0.
    return db.switch.get("magnetic0").disk.stats


def run_cs(read_batch_chunks: int) -> dict:
    """One client/server run; returns elapsed time and wire counters for
    the timed sequential read only (cold caches)."""
    built = build_inversion_cs(read_batch_chunks=read_batch_chunks)
    try:
        adapter = built.adapter
        handle = _populate(adapter)
        adapter.flush_caches()
        client = adapter.client
        net0 = client.network.stats.messages
        rt0 = client.network.stats.round_trips
        t0 = adapter.clock.now()
        _sequential_read(adapter, handle)
        return {
            "read_batch_chunks": read_batch_chunks,
            "elapsed_s": adapter.clock.now() - t0,
            "net_messages": client.network.stats.messages - net0,
            "net_round_trips": client.network.stats.round_trips - rt0,
            "batched_reads": client.batched_reads,
            "buffered_reads": client.buffered_reads,
        }
    finally:
        built.close()


def _chunk_index_descents() -> int:
    return sum(n for rel, n in BTree.descents_by_rel.items()
               if rel.endswith("_chunkno_idx"))


def _counted(adapter, fn) -> dict:
    """Run ``fn()`` cold-cache and return the counter deltas."""
    adapter.flush_caches()
    db = adapter.db
    disk = _disk_stats(db)
    buf = db.buffers.stats
    d0 = BTree.total_descents
    c0 = _chunk_index_descents()
    r0 = disk.reads
    p0, ph0 = buf.prefetches, buf.prefetch_hits
    t0 = adapter.clock.now()
    fn()
    return {
        "elapsed_s": adapter.clock.now() - t0,
        "btree_descents": BTree.total_descents - d0,
        "chunk_index_descents": _chunk_index_descents() - c0,
        "device_reads": disk.reads - r0,
        "prefetches": buf.prefetches - p0,
        "prefetch_hits": buf.prefetch_hits - ph0,
        "readahead_window": db.buffers.readahead_window,
    }


def _single_transfer_read(adapter, handle) -> None:
    """The whole file in one call: the range APIs resolve the chunk map
    with a single index descent and batched heap reads."""
    adapter.begin()
    data = adapter.read_at(handle, 0, SEQIO_FILE_SIZE)
    if data != _payload(SEQIO_FILE_SIZE, 0):
        raise AssertionError("wrong bytes in single-transfer read")
    adapter.commit()


def run_sp() -> dict:
    """Single-process run with B-tree/disk/buffer counters around two
    cold-cache sequential reads: chunk-at-a-time (the Figure 5 request
    pattern, where the buffer cache's read-ahead does the batching) and
    a single 1 MB transfer (where one range resolution does)."""
    built = build_inversion_sp()
    try:
        adapter = built.adapter
        handle = _populate(adapter)
        result = _counted(adapter, lambda: _sequential_read(adapter, handle))
        result["single_transfer"] = _counted(
            adapter, lambda: _single_transfer_read(adapter, handle))
        return result
    finally:
        built.close()


def run_seqio() -> dict:
    """The full experiment: Figure 5 sequential read, client/server
    before/after RPC batching, plus the instrumented in-process read."""
    before = run_cs(read_batch_chunks=1)
    after = run_cs(read_batch_chunks=RPC_BATCH_CHUNKS)
    sp = run_sp()
    return {
        "experiment": "sequential 1 MB read, 8 KB chunks, cold caches",
        "chunks": SEQIO_CHUNKS,
        "file_size": SEQIO_FILE_SIZE,
        "cs_before": before,
        "cs_after": after,
        "sp": sp,
        "speedup": before["elapsed_s"] / after["elapsed_s"],
    }


def main(argv: list[str]) -> int:
    out = argv[0] if argv else "BENCH_seqio.json"
    results = run_seqio()
    with open(out, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    print(f"wrote {out}: speedup {results['speedup']:.2f}x "
          f"({results['cs_before']['elapsed_s']:.3f}s -> "
          f"{results['cs_after']['elapsed_s']:.3f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
