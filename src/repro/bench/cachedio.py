"""The client-cache experiment (BENCH_cachedio.json).

Two workloads over the client/server protocol with the lease-coherent
client cache (:mod:`repro.cache`) enabled:

* **hot** — a file is written, statted and read once (warming the
  path, fileatt and chunk tiers), then re-statted and re-read many
  times.  Every warm pass is served entirely from the cache: the
  SEEK_SET rewind is absorbed client-side and the reads and stats ship
  **zero** network messages.
* **deep_tree** — a path-heavy workload: repeated ``p_stat`` passes
  over leaf files at the bottom of a deep directory chain, cached
  versus uncached.  Uncached, every pass pays the full per-message
  Ethernet overhead for every leaf; cached, only the first pass does,
  so N passes cost about one pass and the speedup approaches N.

The numbers are deterministic — simulated clock and message counters,
never wall time — so CI asserts on them exactly (byte-identical across
runs).

Run directly::

    PYTHONPATH=src python -m repro.bench.cachedio [output.json]
"""

from __future__ import annotations

import json
import sys

from repro.bench.harness import build_inversion_cs
from repro.core.constants import CHUNK_SIZE

#: the hot file: 8 chunks, read back whole.
HOT_CHUNKS = 8
HOT_FILE_SIZE = HOT_CHUNKS * CHUNK_SIZE
HOT_FILE = "/hot/data"

#: warm re-read/re-stat passes measured after warm-up.
HOT_PASSES = 16

#: the deep tree: leaves this many directories down, statted this many
#: passes over.
TREE_DEPTH = 8
TREE_LEAVES = 8
TREE_PASSES = 5


def _payload(nbytes: int) -> bytes:
    unit = b"0123456789abcdef"
    return (unit * (nbytes // len(unit) + 1))[:nbytes]


def run_hot() -> dict:
    """Write once, warm once, then re-stat + rewind + re-read
    ``HOT_PASSES`` times — the warm passes must ship zero messages."""
    built = build_inversion_cs(cache_paths=64, cache_chunks=HOT_CHUNKS)
    try:
        client = built.adapter.client
        clock = built.adapter.clock
        data = _payload(HOT_FILE_SIZE)
        client.p_mkdir("/hot")
        fd = client.p_creat(HOT_FILE)
        client.p_write(fd, data)
        client.p_close(fd)
        # Warm-up: the stat fills the path and fileatt tiers, the full
        # read fills every chunk.
        client.p_stat(HOT_FILE)
        fd = client.p_open(HOT_FILE, 0)
        if client.p_read(fd, HOT_FILE_SIZE) != data:
            raise AssertionError("wrong bytes in warm-up read")
        warm_messages = client.network.stats.messages
        t0 = clock.now()
        for _ in range(HOT_PASSES):
            client.p_stat(HOT_FILE)
            client.p_lseek(fd, 0, 0)
            if client.p_read(fd, HOT_FILE_SIZE) != data:
                raise AssertionError("wrong bytes in hot read")
        hot_messages = client.network.stats.messages - warm_messages
        hot_elapsed = clock.now() - t0
        if hot_messages != 0:
            raise AssertionError(
                f"hot passes were not free: {hot_messages} messages")
        client.p_close(fd)
        stats = client._cache.stats
        return {
            "file_size": HOT_FILE_SIZE,
            "passes": HOT_PASSES,
            "warmup_messages": warm_messages,
            "hot_messages": hot_messages,
            "hot_elapsed_s": hot_elapsed,
            "cache_hits": dict(sorted(stats.hits.items())),
            "cache_misses": dict(sorted(stats.misses.items())),
        }
    finally:
        built.close()


def _tree_paths() -> tuple[str, list[str]]:
    parts = [f"d{i}" for i in range(TREE_DEPTH)]
    deepest = "/" + "/".join(parts)
    leaves = [f"{deepest}/leaf{j}" for j in range(TREE_LEAVES)]
    return deepest, leaves


def run_tree(cached: bool) -> dict:
    """``TREE_PASSES`` stat passes over the leaves of a deep chain."""
    built = build_inversion_cs(cache_paths=256 if cached else 0)
    try:
        client = built.adapter.client
        clock = built.adapter.clock
        _, leaves = _tree_paths()
        path = ""
        for i in range(TREE_DEPTH):
            path += f"/d{i}"
            client.p_mkdir(path)
        for leaf in leaves:
            client.p_close(client.p_creat(leaf))
        m0 = client.network.stats.messages
        t0 = clock.now()
        for _ in range(TREE_PASSES):
            for leaf in leaves:
                att = client.p_stat(leaf)
                if att.size != 0:
                    raise AssertionError(f"unexpected size for {leaf}")
        return {
            "cached": cached,
            "depth": TREE_DEPTH,
            "leaves": TREE_LEAVES,
            "passes": TREE_PASSES,
            "elapsed_s": clock.now() - t0,
            "net_messages": client.network.stats.messages - m0,
        }
    finally:
        built.close()


def run_cachedio() -> dict:
    """The full experiment: zero-RPC hot reads plus the deep-tree
    path-lookup speedup."""
    hot = run_hot()
    uncached = run_tree(cached=False)
    cached = run_tree(cached=True)
    speedup = uncached["elapsed_s"] / cached["elapsed_s"]
    return {
        "experiment": ("lease-coherent client cache: hot re-read/re-stat "
                       "and deep-tree path lookups"),
        "hot": hot,
        "deep_tree": {
            "uncached": uncached,
            "cached": cached,
            "speedup": speedup,
        },
    }


def main(argv: list[str]) -> int:
    out = argv[0] if argv else "BENCH_cachedio.json"
    results = run_cachedio()
    with open(out, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    tree = results["deep_tree"]
    print(f"wrote {out}: hot passes {results['hot']['hot_messages']} "
          f"messages, deep-tree speedup {tree['speedup']:.2f}x "
          f"({tree['uncached']['elapsed_s']:.3f}s -> "
          f"{tree['cached']['elapsed_s']:.3f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
