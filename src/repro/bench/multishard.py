"""The multi-shard scale experiment (BENCH_multishard.json).

The single-server scheduler experiment (:mod:`repro.bench.multiuser`)
shows N clients sharing one data manager; this one partitions the
namespace across 1/2/4/8 independent Inversion servers
(:mod:`repro.shard`) and drives the same per-client work through the
sharded client.  Each shard runs on its own simulated clock, so the
cluster's elapsed time is the *slowest shard's* — disjoint subtrees do
their work in parallel simulated time, and throughput scales with the
shard count until imbalance or coordination bites.

Two configurations:

- **disjoint** — ``clients`` sessions, client ``c`` homed on shard
  ``c % nshards``, each committing ``txns`` overwrite transactions to
  its own pre-created file under that shard's subtree.  Every commit
  is strictly local; the benchmark asserts the cluster sent **zero
  cross-shard messages** — partitioning must cost nothing when the
  workload respects it.
- **twophase** (at 2 shards) — each client's transactions overwrite
  one file on each of two shards, so every commit runs the full 2PC
  round: prepares, the coordinator's decision force, phase-two
  resolves.  The interesting outputs are messages and forces per
  transaction — the price of crossing the partition.

Everything runs under the seeded :class:`~repro.shard.ShardedScheduler`
and simulated clocks, so the JSON is byte-identical across runs; CI
runs the module twice and ``cmp``'s the outputs.

Run directly::

    PYTHONPATH=src python -m repro.bench.multishard [output.json] \
        [--shards 1,2,4,8] [--clients 64] [--txns 4]
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import sys
import tempfile

from repro.core.constants import O_RDWR
from repro.sched.scheduler import Call, Ref, Txn
from repro.shard import ShardedCluster, ShardedScheduler

#: shard counts swept by the scaling curve.
SHARD_COUNTS = (1, 2, 4, 8)

#: concurrent client sessions (the paper-scale question: what does a
#: building full of users do to one server — and to eight).
CLIENTS = 64

#: committing transactions per client.
TXNS_PER_CLIENT = 4

#: bytes overwritten per transaction.
WRITE_BYTES = 6000

SCHED_SEED = 0


def _payload(tag: str, size: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < size:
        out += hashlib.sha256(f"multishard:{tag}:{counter}".encode()).digest()
        counter += 1
    return bytes(out[:size])


def _overwrite(path: str, tag: str, base: int) -> list[Call]:
    """open → write → close at ordinals base..base+2."""
    return [Call("p_open", path, O_RDWR),
            Call("p_write", Ref(base), _payload(tag, WRITE_BYTES)),
            Call("p_close", Ref(base))]


def _build(nshards: int, clients: int, twophase: bool):
    workdir = tempfile.mkdtemp(prefix="inversion-multishard-")
    assignments = {f"s{k}": k for k in range(nshards)}
    cluster = ShardedCluster.create(os.path.join(workdir, "cluster"),
                                    nshards, policy="subtree",
                                    assignments=assignments)
    setup = cluster.client()
    for k in range(nshards):
        setup.p_mkdir(f"/s{k}")
    for c in range(clients):
        home = c % nshards
        fd = setup.p_creat(f"/s{home}/f{c}")
        setup.p_write(fd, _payload(f"seed{c}", WRITE_BYTES))
        setup.p_close(fd)
        if twophase:
            away = (c + 1) % nshards
            fd = setup.p_creat(f"/s{away}/g{c}")
            setup.p_write(fd, _payload(f"away{c}", WRITE_BYTES))
            setup.p_close(fd)
    setup.close()
    cluster.flush_caches()

    def cleanup() -> None:
        cluster.close()
        shutil.rmtree(workdir, ignore_errors=True)
    return cluster, cleanup


def _program(c: int, nshards: int, txns: int, twophase: bool) -> list[Txn]:
    home = c % nshards
    program = []
    ordinal = 0
    for t in range(txns):
        items = _overwrite(f"/s{home}/f{c}", f"c{c}t{t}", ordinal)
        ordinal += 3
        if twophase:
            away = (c + 1) % nshards
            items += _overwrite(f"/s{away}/g{c}", f"x{c}t{t}", ordinal)
            ordinal += 3
        program.append(Txn(items, tag=f"c{c}t{t}"))
    return program


def run_shards(nshards: int, clients: int = CLIENTS,
               txns: int = TXNS_PER_CLIENT,
               twophase: bool = False) -> dict:
    """One configuration: ``clients`` sessions over ``nshards`` shards.
    Cluster elapsed time is the maximum over per-shard clocks — the
    slowest shard defines the run."""
    cluster, cleanup = _build(nshards, clients, twophase)
    try:
        sched = ShardedScheduler(cluster, seed=SCHED_SEED)
        try:
            for c in range(clients):
                sched.add_session(_program(c, nshards, txns, twophase),
                                  name=f"c{c}", home=c % nshards)
            forces0 = sum(db.tm.stats.status_forces for db in cluster.dbs)
            writes0 = sum(db.switch.get(db.switch.default_name).disk
                          .stats.writes for db in cluster.dbs)
            starts = [db.clock.now() for db in cluster.dbs]
            fairness = sched.run()
            elapsed = cluster.elapsed_max(starts)
            trace_hash = sched.trace_hash()
        finally:
            sched.close()
        ntxns = clients * txns
        stats = cluster.stats
        if not twophase and stats.cross_shard_messages:
            raise AssertionError(
                f"disjoint workload sent {stats.cross_shard_messages} "
                f"cross-shard messages; partitioning must be free when "
                f"the workload respects it")
        forces = sum(db.tm.stats.status_forces for db in cluster.dbs) \
            - forces0
        writes = sum(db.switch.get(db.switch.default_name).disk
                     .stats.writes for db in cluster.dbs) - writes0
        return {
            "shards": nshards,
            "clients": clients,
            "transactions": ntxns,
            "elapsed_s": elapsed,
            "txns_per_sec": ntxns / elapsed,
            "status_forces": forces,
            "device_writes": writes,
            "trace_hash": trace_hash,
            "routing": {
                "routed_ops": stats.routed_ops,
                "single_shard_txns": stats.single_shard_txns,
                "cross_shard_txns": stats.cross_shard_txns,
                "cross_shard_messages": stats.cross_shard_messages,
                "messages_per_txn": stats.cross_shard_messages / ntxns,
                "prepares": stats.prepares,
                "decisions": stats.decisions,
            },
            "sched": {
                "slices": sched.stats.slices,
                "context_switches": sched.stats.context_switches,
                "lock_parks": sched.stats.lock_parks,
                "retries": sched.stats.retries,
                "max_ready_wait_s": fairness["max_ready_wait_s"],
                "starved": fairness["starved"],
            },
        }
    finally:
        cleanup()


def run_multishard(shard_counts=SHARD_COUNTS, clients: int = CLIENTS,
                   txns: int = TXNS_PER_CLIENT) -> dict:
    """The full experiment: the disjoint scaling curve over
    ``shard_counts``, plus the 2PC cost profile at two shards (when the
    sweep includes multi-shard configurations)."""
    disjoint = [run_shards(n, clients, txns) for n in shard_counts]
    base = disjoint[0]["txns_per_sec"]
    result = {
        "experiment": ("multi-shard scale: throughput vs shard count for "
                       "subtree-partitioned clients, plus the 2PC price "
                       "of crossing the partition; deterministic "
                       "per-shard clocks"),
        "clients": clients,
        "txns_per_client": txns,
        "sched_seed": SCHED_SEED,
        "disjoint": disjoint,
        "scaling": {
            "txns_per_sec_by_shards": {
                str(r["shards"]): r["txns_per_sec"] for r in disjoint},
            "speedups_over_one_shard": {
                str(r["shards"]): r["txns_per_sec"] / base
                for r in disjoint},
        },
    }
    if any(n >= 2 for n in shard_counts):
        result["twophase"] = run_shards(2, clients, txns, twophase=True)
    return result


def main(argv: list[str]) -> int:
    out = "BENCH_multishard.json"
    shard_counts = SHARD_COUNTS
    clients = CLIENTS
    txns = TXNS_PER_CLIENT
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--shards":
            shard_counts = tuple(int(s) for s in args.pop(0).split(","))
        elif arg == "--clients":
            clients = int(args.pop(0))
        elif arg == "--txns":
            txns = int(args.pop(0))
        elif arg.startswith("--"):
            print(f"unknown option {arg}", file=sys.stderr)
            return 2
        else:
            out = arg
    results = run_multishard(shard_counts, clients, txns)
    with open(out, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    speedups = results["scaling"]["speedups_over_one_shard"]
    top = str(max(shard_counts))
    line = (f"wrote {out}: {clients} clients, 1->{top} shards "
            f"{speedups[top]:.2f}x throughput")
    if "twophase" in results:
        tp = results["twophase"]["routing"]
        line += (f"; 2PC {tp['messages_per_txn']:.1f} msgs/txn "
                 f"({tp['prepares']} prepares, {tp['decisions']} decisions)")
    print(line)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
