"""Configuration builders and experiment drivers.

Builds the three Table 3 configurations (plus ablation variants) on
fresh simulated hardware and runs the workload.  Each configuration
gets its own clock and disk — the paper ran its configurations as
separate experiments on the same drive, so what must be shared is the
*model*, not the instance.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass

from repro.bench.workload import Benchmark, BenchmarkSizes, InversionAdapter, NfsAdapter
from repro.core.client import RemoteInversionClient
from repro.core.filesystem import InversionFS
from repro.core.library import InversionClient
from repro.core.server import InversionServer
from repro.db.buffer import DEFAULT_BUFFERS, DEFAULT_READAHEAD
from repro.db.database import Database
from repro.nfs.client import NFSClient, UDP_RPC_10MBIT
from repro.nfs.ffs import FastFileSystem
from repro.nfs.prestoserve import PrestoServe
from repro.nfs.server import NFSServer
from repro.sim.clock import SimClock
from repro.sim.disk import DiskModel, RZ58
from repro.sim.network import ETHERNET_10MBIT, NetworkModel


@dataclass
class BuiltConfig:
    """One runnable configuration plus its teardown."""

    name: str
    adapter: object
    cleanup: object  # zero-arg callable

    def close(self) -> None:
        self.cleanup()


def _fresh_dir() -> str:
    return tempfile.mkdtemp(prefix="inversion-bench-")


def build_inversion_sp(buffer_pages: int = DEFAULT_BUFFERS,
                       chunk_index: bool = True,
                       readahead_window: int = DEFAULT_READAHEAD,
                       group_commit_window: float = 0.0,
                       coalesce_writes: bool = True) -> BuiltConfig:
    """Single-process Inversion: the benchmark dynamically loaded into
    the data manager — "no data must be copied between them", and no
    network."""
    workdir = _fresh_dir()
    clock = SimClock()
    db = Database.create(os.path.join(workdir, "db"), clock=clock,
                         buffer_pages=buffer_pages)
    db.buffers.readahead_window = readahead_window
    db.buffers.coalesce_writes = coalesce_writes
    fs = InversionFS.mkfs(db)
    db.tm.group_commit_window = group_commit_window
    fs.chunk_index = chunk_index
    client = InversionClient(fs)
    adapter = InversionAdapter(client, db)

    def cleanup() -> None:
        db.close()
        shutil.rmtree(workdir, ignore_errors=True)
    return BuiltConfig("inversion_sp", adapter, cleanup)


def build_inversion_cs(buffer_pages: int = DEFAULT_BUFFERS,
                       readahead_window: int = DEFAULT_READAHEAD,
                       read_batch_chunks: int = 1,
                       write_batch_chunks: int = 1,
                       group_commit_window: float = 0.0,
                       cache_paths: int = 0,
                       cache_chunks: int = 0) -> BuiltConfig:
    """Client/server Inversion: every p_* call crosses the simulated
    TCP/IP Ethernet.  ``read_batch_chunks`` > 1 turns on the client's
    multi-chunk read RPC, ``write_batch_chunks`` > 1 the symmetric
    multi-chunk write RPC, and ``cache_paths``/``cache_chunks`` > 0
    the lease-coherent client cache (all off by default — the paper's
    protocol)."""
    workdir = _fresh_dir()
    clock = SimClock()
    db = Database.create(os.path.join(workdir, "db"), clock=clock,
                         buffer_pages=buffer_pages)
    db.buffers.readahead_window = readahead_window
    fs = InversionFS.mkfs(db)
    db.tm.group_commit_window = group_commit_window
    server = InversionServer(fs)
    network = NetworkModel(clock=clock, params=ETHERNET_10MBIT)
    client = RemoteInversionClient(server, network,
                                   read_batch_chunks=read_batch_chunks,
                                   write_batch_chunks=write_batch_chunks,
                                   cache_paths=cache_paths,
                                   cache_chunks=cache_chunks)
    adapter = InversionAdapter(client, db)

    def cleanup() -> None:
        client.close()
        db.close()
        shutil.rmtree(workdir, ignore_errors=True)
    return BuiltConfig("inversion_cs", adapter, cleanup)


def build_nfs(prestoserve: bool = True, pipeline: bool = True,
              cache_blocks: int = DEFAULT_BUFFERS) -> BuiltConfig:
    """ULTRIX NFS on the same drive model, UDP RPC, optional
    PRESTOserve board."""
    clock = SimClock()
    disk = DiskModel(clock=clock, geometry=RZ58)
    ffs = FastFileSystem(clock, disk, cache_blocks=cache_blocks)
    board = PrestoServe.attach(ffs) if prestoserve else None
    server = NFSServer(ffs, board)
    network = NetworkModel(clock=clock, params=UDP_RPC_10MBIT)
    client = NFSClient(server, network, pipeline=pipeline)
    adapter = NfsAdapter(client, ffs, board)
    return BuiltConfig("nfs" if prestoserve else "nfs_nopresto", adapter,
                       lambda: None)


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------

BUILDERS = {
    "inversion_cs": build_inversion_cs,
    "nfs": build_nfs,
    "inversion_sp": build_inversion_sp,
}

TABLE3_CONFIGS = ("inversion_cs", "nfs", "inversion_sp")


def run_config(name: str, sizes: BenchmarkSizes | None = None,
               ops: tuple[str, ...] | None = None, **builder_kwargs
               ) -> dict[str, float]:
    """Run the workload (or a subset of ops) on one configuration."""
    built = BUILDERS[name](**builder_kwargs)
    try:
        bench = Benchmark(built.adapter, sizes or BenchmarkSizes())
        if ops is None:
            return bench.run_all()
        bench.op_create()  # every test needs the file
        results = {"create": bench.results["create"]}
        for op in ops:
            if op == "create":
                continue
            getattr(bench, f"op_{_op_method(op)}")()
            results[op] = bench.results[op]
        return results
    finally:
        built.close()


_OP_METHODS = {
    "create": "create",
    "read_byte": "read_single_byte",
    "write_byte": "write_single_byte",
    "read_single": "read_single",
    "read_seq_pages": "read_seq_pages",
    "read_random_pages": "read_random_pages",
    "write_single": "write_single",
    "write_seq_pages": "write_seq_pages",
    "write_random_pages": "write_random_pages",
}


def _op_method(op: str) -> str:
    return _OP_METHODS[op]


def run_all_configs(sizes: BenchmarkSizes | None = None,
                    configs: tuple[str, ...] = TABLE3_CONFIGS
                    ) -> dict[str, dict[str, float]]:
    """The full Table 3: every operation in every configuration."""
    return {name: run_config(name, sizes) for name in configs}
