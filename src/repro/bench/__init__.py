"""Benchmark harness for the paper's evaluation section.

"The benchmark consisted of the following operations: create a 25 MByte
file; measure the latency to read or write a single byte at a random
location in the file; read 1 MByte in a single large transfer; read
1 MByte sequentially in page-sized units; read 1 MByte in page-sized
units distributed at random throughout the file; repeat the 1 MByte
transfer tests, writing instead of reading.  All caches were flushed
before each test."

Three configurations (Table 3): Inversion client/server, ULTRIX NFS
with PRESTOserve, and single-process Inversion (the benchmark running
inside the data manager).  Results are simulated elapsed seconds on
the shared hardware model; the simulation is deterministic, so one run
replaces the paper's mean-of-ten.

Run ``python -m repro.bench all`` for every figure and table.
"""

from repro.bench.workload import (
    Benchmark,
    BenchmarkSizes,
    InversionAdapter,
    NfsAdapter,
)
from repro.bench.harness import (
    build_inversion_cs,
    build_inversion_sp,
    build_nfs,
    run_config,
    run_all_configs,
)
from repro.bench.report import (
    PAPER_TABLE3,
    format_figure,
    format_table3,
    shape_ratios,
)

__all__ = [
    "Benchmark",
    "BenchmarkSizes",
    "InversionAdapter",
    "NfsAdapter",
    "build_inversion_cs",
    "build_inversion_sp",
    "build_nfs",
    "run_config",
    "run_all_configs",
    "PAPER_TABLE3",
    "format_figure",
    "format_table3",
    "shape_ratios",
]
