"""The replication experiment (BENCH_replication.json).

Three questions about the log-shipping subsystem (:mod:`repro.replica`):

- **read scaling** — a fixed fleet of reader sessions, routed
  round-robin across 0/1/2/4 replicas.  Replicas are independent
  machines on independent clocks, so fleet wall-clock is the *slowest
  member's* elapsed simulated time; read throughput should scale with
  the replica count (the HopsFS argument for a database-backed
  namespace: reads scale out, writes stay on one primary).
- **replica lag under write load** — a primary committing a stream of
  transactions while one replica syncs every K commits.  Reported lag
  is sampled *before* each sync round (the worst a bounded-staleness
  read could see): xids behind, simulated seconds behind, and the
  shipping cost (rounds, entries, pages, bytes).
- **promotion time** — with a deliberate backlog outstanding, promote
  the replica: simulated seconds from "primary declared dead" to "new
  primary serving", including the final feed drain, measured on the
  replica's clock.

Everything runs on seeded simulated clocks with SHA-256-derived
payloads, so the JSON is byte-identical across runs; CI double-runs it
and compares.

Run directly::

    PYTHONPATH=src python -m repro.bench.replication [output.json]
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import sys
import tempfile

from repro.core.library import InversionClient
from repro.replica import ReplicatedCluster

#: replica counts swept by the read-scaling curve (0 = readers hit the
#: primary directly — the no-replication baseline).
REPLICA_COUNTS = (0, 1, 2, 4)

#: reader sessions in the fleet (fixed across the sweep, so the total
#: read work is identical and only the routing changes).
READER_SESSIONS = 8

#: files each reader session reads end-to-end.
FILES = 6

#: chunks per fixture file (8 KB each).
CHUNKS_PER_FILE = 3

#: committing write transactions for the lag experiment.
LAG_WRITE_TXNS = 24

#: the replica syncs every K primary commits.
LAG_SYNC_EVERY = 6

#: write transactions left unshipped when promotion is measured.
PROMO_BACKLOG_TXNS = 8

CHUNK = 8192


def _payload(tag: str, size: int) -> bytes:
    """Deterministic bytes, independent of PYTHONHASHSEED."""
    out = bytearray()
    counter = 0
    while len(out) < size:
        out += hashlib.sha256(f"replication:{tag}:{counter}".encode()).digest()
        counter += 1
    return bytes(out[:size])


def _setup_fixtures(cluster: ReplicatedCluster) -> None:
    """Fixture files committed on the primary before any replica is
    seeded, so the base backup (not the feed) carries them."""
    setup = InversionClient(cluster.primary_fs)
    setup.p_begin()
    for i in range(FILES):
        fd = setup.p_creat(f"/data{i}")
        setup.p_write(fd, _payload(f"file{i}", CHUNKS_PER_FILE * CHUNK))
        setup.p_close(fd)
    setup.p_commit()
    cluster.primary_db.tm.flush_commits()
    cluster.primary_db.flush_caches()


def _drive_readers(cluster: ReplicatedCluster) -> dict:
    """READER_SESSIONS sessions, each reading every fixture file
    end-to-end through its routed server.  Returns throughput numbers
    aggregated across member clocks."""
    clients = [cluster.reader_client() for _ in range(READER_SESSIONS)]
    servers = {id(c.server): c.server for c in clients}
    starts = {key: _clock_of(server).now()
              for key, server in servers.items()}
    reads = 0
    for client in clients:
        for i in range(FILES):
            fd = client.p_open(f"/data{i}", 0)
            while client.p_read(fd, CHUNK):
                reads += 1
            client.p_close(fd)
        client.close()
    elapsed = max(_clock_of(server).now() - starts[key]
                  for key, server in servers.items())
    return {"reads": reads, "wall_s": elapsed,
            "reads_per_sec": reads / elapsed}


def _clock_of(server):
    db = getattr(server, "db", None)
    return db.clock if db is not None else server.fs.db.clock


def run_read_scaling() -> list[dict]:
    results = []
    for nreplicas in REPLICA_COUNTS:
        workdir = tempfile.mkdtemp(prefix="inversion-repl-")
        try:
            cluster = ReplicatedCluster.create(
                os.path.join(workdir, "cluster"), 0)
            _setup_fixtures(cluster)
            # Seed replicas only after the fixtures exist (ReplicaServer
            # .seed checkpoints and clones; late seeding keeps the feed
            # small and the backup the dominant transfer).
            from repro.replica import ReplicaServer
            cluster.replicas = [
                ReplicaServer.seed(cluster.feed,
                                   os.path.join(workdir, f"replica{i}"),
                                   f"replica{i}")
                for i in range(nreplicas)
            ]
            measured = _drive_readers(cluster)
            measured["replicas"] = nreplicas
            measured["replica_reads"] = cluster.feed.stats.replica_reads
            results.append(measured)
            cluster.close()
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    return results


def _lag_seconds(cluster, replica) -> float:
    """Commit-time gap between the primary's durable horizon and the
    replica's published horizon, in simulated seconds."""
    tm = cluster.primary_db.tm
    primary_xid = cluster.feed.durable_horizon()
    replica_xid = replica.horizon()
    if primary_xid <= replica_xid:
        return 0.0
    ptime = tm.commit_time(primary_xid)
    rtime = tm.commit_time(replica_xid)
    if ptime is None or rtime is None:
        return 0.0
    return max(0.0, ptime - rtime)


def run_lag() -> dict:
    workdir = tempfile.mkdtemp(prefix="inversion-repl-")
    try:
        cluster = ReplicatedCluster.create(os.path.join(workdir, "cluster"), 0)
        _setup_fixtures(cluster)
        from repro.replica import ReplicaServer
        replica = ReplicaServer.seed(cluster.feed,
                                     os.path.join(workdir, "replica0"),
                                     "replica0")
        cluster.replicas = [replica]
        writer = InversionClient(cluster.primary_fs)
        stats = cluster.feed.stats
        samples = []
        for t in range(LAG_WRITE_TXNS):
            writer.p_begin()
            fd = writer.p_open(f"/data{t % FILES}", 2)  # O_RDWR
            writer.p_write(fd, _payload(f"lag{t}", CHUNK))
            writer.p_close(fd)
            writer.p_commit()
            if (t + 1) % LAG_SYNC_EVERY == 0:
                pre_xids = (cluster.feed.durable_horizon()
                            - replica.horizon())
                pre_secs = _lag_seconds(cluster, replica)
                replica.sync()
                samples.append({
                    "after_txn": t + 1,
                    "lag_xids_before_sync": pre_xids,
                    "lag_seconds_before_sync": pre_secs,
                    "cursor": replica.cursor,
                })
        replica.sync()
        result = {
            "write_txns": LAG_WRITE_TXNS,
            "sync_every": LAG_SYNC_EVERY,
            "samples": samples,
            "max_lag_xids": max(s["lag_xids_before_sync"] for s in samples),
            "final_lag_xids": (cluster.feed.durable_horizon()
                               - replica.horizon()),
            "rounds": stats.rounds,
            "entries_shipped": stats.entries_shipped,
            "pages_shipped": stats.pages_shipped,
            "bytes_shipped": stats.bytes_shipped,
            "cursor_saves": stats.cursor_saves,
        }
        cluster.close()
        return result
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def run_promotion() -> dict:
    workdir = tempfile.mkdtemp(prefix="inversion-repl-")
    try:
        cluster = ReplicatedCluster.create(os.path.join(workdir, "cluster"), 0)
        _setup_fixtures(cluster)
        from repro.replica import ReplicaServer
        replica = ReplicaServer.seed(cluster.feed,
                                     os.path.join(workdir, "replica0"),
                                     "replica0")
        cluster.replicas = [replica]
        writer = InversionClient(cluster.primary_fs)
        for t in range(PROMO_BACKLOG_TXNS):
            writer.p_begin()
            fd = writer.p_open(f"/data{t % FILES}", 2)
            writer.p_write(fd, _payload(f"promo{t}", CHUNK))
            writer.p_close(fd)
            writer.p_commit()
        cluster.primary_db.tm.flush_commits()
        backlog_xids = cluster.feed.durable_horizon() - replica.horizon()
        backlog_entries = cluster.feed.next_seq - replica.cursor
        cluster.primary_db.simulate_crash()
        t0 = replica.db.clock.now()
        before = replica.cursor
        cluster.promote(replica)
        promotion_s = replica.db.clock.now() - t0
        # The new primary serves a write immediately.
        sid = replica.connect()
        fd = replica.dispatch(sid, "p_creat", "/after-failover")
        replica.dispatch(sid, "p_write", fd, b"served by the new primary")
        replica.dispatch(sid, "p_close", fd)
        replica.disconnect(sid)
        result = {
            "backlog_txns": PROMO_BACKLOG_TXNS,
            "backlog_xids": backlog_xids,
            "backlog_entries": backlog_entries,
            "drained_entries": replica.cursor - before,
            "promotion_s": promotion_s,
            "promotions": cluster.feed.stats.promotions,
        }
        cluster.close()
        return result
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def run_replication() -> dict:
    scaling = run_read_scaling()
    by_count = {str(r["replicas"]): r["reads_per_sec"] for r in scaling}
    one = next(r for r in scaling if r["replicas"] == 1)
    four = next(r for r in scaling if r["replicas"] == 4)
    return {
        "experiment": ("log-shipping replication: read throughput vs "
                       "replica count, replica lag under write load, "
                       "promotion time with a backlog"),
        "reader_sessions": READER_SESSIONS,
        "read_scaling": scaling,
        "lag": run_lag(),
        "promotion": run_promotion(),
        "scaling": {
            "reads_per_sec_by_replicas": by_count,
            "speedup_4_over_1": four["reads_per_sec"] / one["reads_per_sec"],
        },
    }


def main(argv: list[str]) -> int:
    out = argv[0] if argv else "BENCH_replication.json"
    results = run_replication()
    with open(out, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    s = results["scaling"]
    lag = results["lag"]
    promo = results["promotion"]
    print(f"wrote {out}: read throughput 1->4 replicas "
          f"{s['speedup_4_over_1']:.2f}x, max replica lag "
          f"{lag['max_lag_xids']} xids "
          f"({lag['bytes_shipped']} bytes shipped in {lag['rounds']} "
          f"rounds), promotion {promo['promotion_s']:.4f}s sim "
          f"({promo['drained_entries']} entries drained)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
