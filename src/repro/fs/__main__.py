"""The Inversion shell tool.

Usage::

    python -m repro.fs DBDIR mkfs
    python -m repro.fs DBDIR mkdir /docs
    python -m repro.fs DBDIR put /docs/readme.txt local.txt
    python -m repro.fs DBDIR cat /docs/readme.txt [--asof T]
    python -m repro.fs DBDIR ls [/path] [--asof T]
    python -m repro.fs DBDIR stat /docs/readme.txt
    python -m repro.fs DBDIR rm /docs/readme.txt
    python -m repro.fs DBDIR query 'retrieve (filename) where size(file) > 0'
    python -m repro.fs DBDIR history /docs/readme.txt
    python -m repro.fs DBDIR check
    python -m repro.fs DBDIR vacuum /docs/readme.txt
    python -m repro.fs DBDIR devices

``--asof`` takes a simulated timestamp (see ``history``) and shows the
file system as it was at that instant.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.core.checker import ConsistencyChecker
from repro.core.chunks import chunk_table_name
from repro.core.filesystem import InversionFS
from repro.core.library import InversionClient
from repro.db.database import Database
from repro.errors import ReproError


def _open(dbdir: str, create: bool = False):
    if create:
        db = Database.create(dbdir)
        fs = InversionFS.mkfs(db)
    else:
        db = Database.open(dbdir)
        fs = InversionFS.attach(db)
    return db, fs


def cmd_mkfs(args) -> int:
    db, _fs = _open(args.dbdir, create=True)
    print(f"created Inversion file system in {args.dbdir}")
    db.close()
    return 0


def cmd_ls(args) -> int:
    db, fs = _open(args.dbdir)
    try:
        for name in fs.readdir(args.path, timestamp=args.asof):
            child = args.path.rstrip("/") + "/" + name
            att = fs.stat(child, timestamp=args.asof)
            marker = "/" if att.type == "directory" else " "
            print(f"{att.size:>12}  {att.type:<14} {name}{marker}")
    finally:
        db.close()
    return 0


def cmd_cat(args) -> int:
    db, fs = _open(args.dbdir)
    try:
        sys.stdout.buffer.write(fs.read_file(args.path, timestamp=args.asof))
    finally:
        db.close()
    return 0


def cmd_put(args) -> int:
    db, fs = _open(args.dbdir)
    try:
        with open(args.local, "rb") as f:
            data = f.read()
        client = InversionClient(fs)
        client.p_begin()
        tx = client._tx
        fs.write_file(tx, args.path, data, owner=args.owner)
        client.p_commit()
        print(f"wrote {len(data)} bytes to {args.path}")
    finally:
        db.close()
    return 0


def cmd_mkdir(args) -> int:
    db, fs = _open(args.dbdir)
    try:
        client = InversionClient(fs)
        client.p_mkdir(args.path)
        print(f"created directory {args.path}")
    finally:
        db.close()
    return 0


def cmd_rm(args) -> int:
    db, fs = _open(args.dbdir)
    try:
        client = InversionClient(fs)
        before = db.clock.now()
        client.p_unlink(args.path)
        print(f"removed {args.path} (recoverable: "
              f"cat --asof {before:.6f})")
    finally:
        db.close()
    return 0


def cmd_stat(args) -> int:
    db, fs = _open(args.dbdir)
    try:
        att = fs.stat(args.path, timestamp=args.asof)
        print(f"file id : {att.file}")
        print(f"owner   : {att.owner}")
        print(f"type    : {att.type}")
        print(f"size    : {att.size}")
        print(f"ctime   : {att.ctime:.6f}")
        print(f"mtime   : {att.mtime:.6f}")
        print(f"atime   : {att.atime:.6f}")
        if att.type != "directory":
            print(f"table   : {chunk_table_name(att.file)}")
    finally:
        db.close()
    return 0


def cmd_query(args) -> int:
    db, fs = _open(args.dbdir)
    try:
        client = InversionClient(fs)
        for row in client.p_query(args.text):
            print("\t".join(str(v) for v in row))
    finally:
        db.close()
    return 0


def cmd_history(args) -> int:
    """List the committed instants at which the file changed."""
    db, fs = _open(args.dbdir)
    try:
        fileid = fs.resolve(args.path)
        from repro.db.heap import HeapFile
        from repro.db.snapshot import BootstrapSnapshot
        info = db.catalog.lookup_table(chunk_table_name(fileid),
                                       BootstrapSnapshot(db.tm),
                                       use_cache=False)
        heap = HeapFile(db.buffers, info.devname, info.name, info.schema)
        instants = set()
        for _tid, xmin, _xmax, _values in heap.scan_all_versions():
            when = db.tm.commit_time(xmin)
            if when is not None:
                instants.add(when)
        archive = db.archive_heap_for(info.name)
        if archive is not None:
            for _tid, xmin, _xmax, _values in archive.scan_all_versions():
                when = db.tm.commit_time(xmin)
                if when is not None:
                    instants.add(when)
        print(f"{args.path}: {len(instants)} committed change instants")
        for when in sorted(instants):
            print(f"  --asof {when:.6f}")
    finally:
        db.close()
    return 0


def cmd_check(args) -> int:
    db, fs = _open(args.dbdir)
    try:
        report = ConsistencyChecker(fs).check_all()
        print(f"checked {report.files_checked} files, "
              f"{report.chunks_checked} chunk versions")
        for c in report.corruptions:
            print(f"  CORRUPT file {c.fileid} chunk {c.chunkno}: "
                  f"{c.kind} — {c.detail}")
        return 0 if report.clean else 1
    finally:
        db.close()


def cmd_vacuum(args) -> int:
    db, fs = _open(args.dbdir)
    try:
        table = chunk_table_name(fs.resolve(args.path))
        stats = db.vacuum(table, archive_device=args.device,
                          keep_history=not args.discard)
        print(f"vacuumed {table}: scanned={stats.scanned} "
              f"archived={stats.archived} expunged={stats.expunged} "
              f"pages {stats.pages_before}->{stats.pages_after}")
    finally:
        db.close()
    return 0


def cmd_devices(args) -> int:
    db, _fs = _open(args.dbdir)
    try:
        for row in db.switch.describe():
            default = " (default)" if row["default"] else ""
            print(f"{row['name']:<12} {row['type']:<14} "
                  f"nonvolatile={row['nonvolatile']}{default}")
    finally:
        db.close()
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.fs")
    parser.add_argument("dbdir", help="Inversion database directory")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("mkfs").set_defaults(fn=cmd_mkfs)

    p = sub.add_parser("ls")
    p.add_argument("path", nargs="?", default="/")
    p.add_argument("--asof", type=float, default=None)
    p.set_defaults(fn=cmd_ls)

    p = sub.add_parser("cat")
    p.add_argument("path")
    p.add_argument("--asof", type=float, default=None)
    p.set_defaults(fn=cmd_cat)

    p = sub.add_parser("put")
    p.add_argument("path")
    p.add_argument("local")
    p.add_argument("--owner", default="root")
    p.set_defaults(fn=cmd_put)

    p = sub.add_parser("mkdir")
    p.add_argument("path")
    p.set_defaults(fn=cmd_mkdir)

    p = sub.add_parser("rm")
    p.add_argument("path")
    p.set_defaults(fn=cmd_rm)

    p = sub.add_parser("stat")
    p.add_argument("path")
    p.add_argument("--asof", type=float, default=None)
    p.set_defaults(fn=cmd_stat)

    p = sub.add_parser("query")
    p.add_argument("text")
    p.set_defaults(fn=cmd_query)

    p = sub.add_parser("history")
    p.add_argument("path")
    p.set_defaults(fn=cmd_history)

    sub.add_parser("check").set_defaults(fn=cmd_check)

    p = sub.add_parser("vacuum")
    p.add_argument("path")
    p.add_argument("--device", default=None)
    p.add_argument("--discard", action="store_true",
                   help="discard old versions instead of archiving them")
    p.set_defaults(fn=cmd_vacuum)

    sub.add_parser("devices").set_defaults(fn=cmd_devices)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
