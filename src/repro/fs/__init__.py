"""Command-line access to Inversion databases.

``python -m repro.fs <dbdir> <command> …`` gives shell-level access to
an Inversion file system — the reproduction's analogue of the paper's
"query language monitor program" plus everyday ls/cat/put tooling.
"""
