"""Simulated hardware substrate.

The paper's evaluation ran on a DECsystem 5900 with a DEC RZ58 disk,
talking to a DECstation 3100 client over 10 Mbit Ethernet, with the NFS
baseline accelerated by a PRESTOserve battery-backed RAM board.  None of
that hardware is available, so this package provides deterministic cost
models for it: a virtual clock (:class:`SimClock`), a seek/rotate/transfer
disk model (:class:`DiskModel`), an Ethernet+TCP/IP message model
(:class:`NetworkModel`), and an NVRAM cache model (:class:`NvramCache`).

Both the Inversion stack and the NFS baseline charge their I/O to the
same models, so relative results (the benchmark *shapes* the paper
reports) are an artefact of the two systems' structure, not of the
models.
"""

from repro.sim.clock import SimClock
from repro.sim.disk import DiskModel, DiskGeometry, RZ58
from repro.sim.network import NetworkModel, EthernetParams, ETHERNET_10MBIT
from repro.sim.nvram import NvramCache

__all__ = [
    "SimClock",
    "DiskModel",
    "DiskGeometry",
    "RZ58",
    "NetworkModel",
    "EthernetParams",
    "ETHERNET_10MBIT",
    "NvramCache",
]
