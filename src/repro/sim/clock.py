"""Virtual clock for deterministic elapsed-time measurement.

All simulated devices advance a shared :class:`SimClock`; benchmark
results are reported in simulated seconds.  The clock also hands out
monotonically increasing logical timestamps used by the transaction
manager for commit times (the paper's time travel keys off transaction
start/commit times recorded in the status file).
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing virtual clock.

    The clock starts at ``origin`` (default 0.0) and only moves forward.
    Components charge time with :meth:`advance`; measurements bracket
    work with :meth:`now`.
    """

    def __init__(self, origin: float = 0.0) -> None:
        self._now = float(origin)
        self._ticks = 0

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative).

        Returns the new time.
        """
        if seconds < 0:
            raise ValueError(f"cannot move time backwards ({seconds!r})")
        self._now += seconds
        return self._now

    def tick(self) -> int:
        """Return a unique, monotonically increasing logical tick.

        Used to break ties between events that occur at the same
        simulated instant (e.g. transaction ordering).
        """
        self._ticks += 1
        return self._ticks

    def reset(self, origin: float = 0.0) -> None:
        """Reset to ``origin``.  Only benchmarks should do this, between
        independent runs."""
        self._now = float(origin)
        self._ticks = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now:.6f})"


class Stopwatch:
    """Measures simulated elapsed time over a block of work.

    >>> clock = SimClock()
    >>> with Stopwatch(clock) as sw:
    ...     _ = clock.advance(1.5)
    >>> sw.elapsed
    1.5
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = self._clock.now()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = self._clock.now() - self._start
