"""CPU cost model for the simulated 1993-era hosts.

The paper's profiling found that "extra work is done in allocating and
copying buffers in Inversion" — i.e. per-tuple and per-page CPU costs
mattered on a ~25 MHz DECsystem 5900.  The model charges small fixed
costs for the hot software operations so that CPU-bound effects (buffer
copies, tuple packing, RPC dispatch) show up in simulated elapsed time.

All constants are per-operation seconds and can be overridden for
ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.clock import SimClock


@dataclass(frozen=True)
class CpuParams:
    """Per-operation CPU costs (seconds)."""

    tuple_pack_s: float = 60e-6        # serialize one record
    tuple_unpack_s: float = 60e-6      # deserialize one record
    buffer_copy_s: float = 350e-6      # copy one 8 KB buffer (the paper's
                                       # "allocating and copying buffers")
    btree_compare_s: float = 4e-6      # one key comparison
    rpc_dispatch_s: float = 800e-6     # unmarshal + dispatch one RPC server-side
    query_row_s: float = 30e-6         # evaluate one qualification row
    udf_call_s: float = 120e-6         # dynamic-load function invocation


DECSYSTEM_5900 = CpuParams()


@dataclass
class CpuModel:
    """Charges CPU time to the shared clock."""

    clock: SimClock
    params: CpuParams = DECSYSTEM_5900
    busy_seconds: float = field(default=0.0)

    def _charge(self, seconds: float, count: int = 1) -> float:
        cost = seconds * count
        self.busy_seconds += cost
        self.clock.advance(cost)
        return cost

    def tuple_pack(self, count: int = 1) -> float:
        return self._charge(self.params.tuple_pack_s, count)

    def tuple_unpack(self, count: int = 1) -> float:
        return self._charge(self.params.tuple_unpack_s, count)

    def buffer_copy(self, count: int = 1) -> float:
        return self._charge(self.params.buffer_copy_s, count)

    def btree_compare(self, count: int = 1) -> float:
        return self._charge(self.params.btree_compare_s, count)

    def rpc_dispatch(self, count: int = 1) -> float:
        return self._charge(self.params.rpc_dispatch_s, count)

    def query_row(self, count: int = 1) -> float:
        return self._charge(self.params.query_row_s, count)

    def udf_call(self, count: int = 1) -> float:
        return self._charge(self.params.udf_call_s, count)


class NullCpuModel(CpuModel):
    """A CPU model that charges nothing — for pure-correctness tests
    that should not depend on cost constants."""

    def __init__(self, clock: SimClock) -> None:
        super().__init__(clock)

    def _charge(self, seconds: float, count: int = 1) -> float:
        return 0.0
