"""Battery-backed RAM write cache — the PRESTOserve board.

The paper's NFS baseline uses PRESTOserve: "a board containing 1 MByte
of battery-backed RAM and driver software to cache NFS writes in
non-volatile memory".  Because the RAM is non-volatile, a write that
lands in it counts as stable storage and the synchronous-NFS-write rule
is satisfied without touching the disk.  The paper's Figure 6 shows the
consequence: "the NFS measurements show no degradation due to random
accesses, since the whole 1 MByte write fits in the PRESTOserve cache,
and is not flushed to disk."

The model is a fixed-capacity write-back cache keyed by block number.
Writes that fit cost only a DMA copy onto the board; when the board is
full, the oldest dirty blocks are destaged to the backing disk (paying
real disk costs) to make room.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.obs.registry import MetricSpec
from repro.sim.clock import SimClock
from repro.sim.disk import BLOCK_SIZE, DiskModel

METRICS = (
    MetricSpec("nvram.hits", "counter", "ops",
               "Writes that overwrote a block already resident on the "
               "board (a subset of nvram.absorbed_writes).",
               "repro.sim.nvram"),
    MetricSpec("nvram.absorbed_writes", "counter", "ops",
               "Stable writes satisfied by battery-backed RAM without "
               "touching the disk.",
               "repro.sim.nvram"),
    MetricSpec("nvram.destages", "counter", "blocks",
               "Dirty blocks written back to the disk.",
               "repro.sim.nvram"),
    MetricSpec("nvram.overflow_destages", "counter", "blocks",
               "Destages forced by a full board to make room for an "
               "incoming write.",
               "repro.sim.nvram"),
)


@dataclass
class NvramStats:
    hits: int = 0
    absorbed_writes: int = 0
    destages: int = 0
    overflow_destages: int = 0


@dataclass
class NvramCache:
    """A PRESTOserve-style NVRAM write cache in front of a disk."""

    clock: SimClock
    disk: DiskModel
    capacity_bytes: int = 1_000_000
    dma_rate_bps: float = 20_000_000.0  # bus copy onto the board
    stats: NvramStats = field(default_factory=NvramStats)
    # block number -> byte count currently held for that block
    _dirty: "OrderedDict[int, int]" = field(default_factory=OrderedDict, repr=False)
    _used: int = field(default=0, repr=False)

    @property
    def capacity_blocks(self) -> int:
        return self.capacity_bytes // BLOCK_SIZE

    def used_bytes(self) -> int:
        return self._used

    def write(self, block: int, nbytes: int = BLOCK_SIZE) -> float:
        """Stable write of ``nbytes`` at ``block``.

        Returns the simulated cost.  If the board is full, the
        least-recently-written blocks are destaged to disk first.
        """
        cost = 0.0
        if block in self._dirty:
            # Overwrite in place on the board.
            self._used -= self._dirty.pop(block)
            self.stats.hits += 1
        while self._used + nbytes > self.capacity_bytes and self._dirty:
            victim_block, victim_bytes = self._dirty.popitem(last=False)
            self._used -= victim_bytes
            cost += self.disk.write_block(victim_block, victim_bytes)
            self.stats.destages += 1
            self.stats.overflow_destages += 1
        dma = nbytes / self.dma_rate_bps
        self.clock.advance(dma)
        cost += dma
        self._dirty[block] = nbytes
        self._used += nbytes
        self.stats.absorbed_writes += 1
        return cost

    def read_hit(self, block: int) -> bool:
        """True if ``block`` is still on the board (reads of freshly
        written data are served from NVRAM)."""
        return block in self._dirty

    def flush(self) -> float:
        """Destage everything to disk (background syncer / unmount)."""
        cost = 0.0
        while self._dirty:
            block, nbytes = self._dirty.popitem(last=False)
            self._used -= nbytes
            cost += self.disk.write_block(block, nbytes)
            self.stats.destages += 1
        return cost
