"""Network cost model: 10 Mbit Ethernet carrying a TCP/IP-like RPC.

The paper measures client/server Inversion over "TCP/IP over a
10 Mbit/sec Ethernet" and concludes the protocol is "much too
heavy-weight": remote access adds three to five seconds to each 1 MB
test.  The model therefore charges, per message, a fixed protocol
overhead (system-call + TCP/IP stack traversal on both ends) plus
serialization onto the wire, and per request/response round trip a
propagation latency.

1 MB moved in 8 KB requests is 128 round trips; with the default
constants that costs ≈ 128 × (4 × 7 ms + wire time) ≈ 4.5 s —
squarely inside the paper's 3–5 s observation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.registry import MetricSpec
from repro.sim.clock import SimClock

METRICS = (
    MetricSpec("net.messages", "counter", "msgs",
               "One-directional messages carried (requests + responses).",
               "repro.sim.network"),
    MetricSpec("net.round_trips", "counter", "ops",
               "Request/response RPC exchanges.",
               "repro.sim.network"),
    MetricSpec("net.bytes_sent", "counter", "bytes",
               "Payload bytes serialized onto the wire.",
               "repro.sim.network"),
    MetricSpec("net.busy_seconds", "counter", "seconds",
               "Simulated seconds of protocol overhead, wire time and "
               "propagation.",
               "repro.sim.network"),
)


@dataclass(frozen=True)
class EthernetParams:
    """Constants describing a network + protocol stack."""

    name: str
    bandwidth_bps: float          # usable wire bandwidth, bytes/second
    per_message_overhead_s: float  # protocol stack cost per message, per end
    propagation_s: float          # one-way wire latency
    mtu: int = 1500               # maximum transmission unit (payload bytes)
    header_bytes: int = 58        # TCP+IP+Ethernet headers per packet


# 10 Mbit/s = 1.25 MB/s raw; ~1.1 MB/s usable after framing.
ETHERNET_10MBIT = EthernetParams(
    name="10 Mbit Ethernet + TCP/IP (ULTRIX 4.2 era)",
    bandwidth_bps=1_100_000.0,
    per_message_overhead_s=0.005,
    propagation_s=0.0002,
)


@dataclass
class NetStats:
    messages: int = 0
    round_trips: int = 0
    bytes_sent: int = 0
    busy_seconds: float = 0.0


@dataclass
class NetworkModel:
    """Charges simulated time for RPC traffic between client and server."""

    clock: SimClock
    params: EthernetParams = ETHERNET_10MBIT
    stats: NetStats = field(default_factory=NetStats)

    def _wire_time(self, payload: int) -> float:
        """Serialization time for ``payload`` bytes including packet
        headers."""
        p = self.params
        npackets = max(1, (payload + p.mtu - 1) // p.mtu)
        total = payload + npackets * p.header_bytes
        return total / p.bandwidth_bps

    def send(self, payload: int) -> float:
        """One message in one direction: stack overhead at the sending
        and receiving host plus wire time plus propagation."""
        p = self.params
        cost = 2 * p.per_message_overhead_s + self._wire_time(payload) + p.propagation_s
        self.stats.messages += 1
        self.stats.bytes_sent += payload
        self.stats.busy_seconds += cost
        self.clock.advance(cost)
        return cost

    def round_trip(self, request_payload: int, response_payload: int) -> float:
        """A request/response RPC exchange."""
        cost = self.send(request_payload) + self.send(response_payload)
        self.stats.round_trips += 1
        return cost

    # -- pure cost computation (pipelining models) ----------------------

    def cost_send(self, payload: int) -> float:
        """The cost :meth:`send` would charge, without charging it."""
        p = self.params
        return 2 * p.per_message_overhead_s + self._wire_time(payload) + p.propagation_s

    def cost_round_trip(self, request_payload: int,
                        response_payload: int) -> float:
        return self.cost_send(request_payload) + self.cost_send(response_payload)

    def charge_seconds(self, seconds: float, messages: int = 0,
                       payload: int = 0) -> float:
        """Advance the clock by a precomputed network cost (used when a
        caller models overlap of network and disk time itself)."""
        if seconds > 0:
            self.stats.busy_seconds += seconds
            self.clock.advance(seconds)
        self.stats.messages += messages
        self.stats.bytes_sent += payload
        return max(seconds, 0.0)
