"""Disk cost model with head-position tracking.

The paper attributes Inversion's 25 MB-file-creation slowdown (Figure 3)
to B-tree index writes being *interleaved* with data-file writes,
"penalizing Inversion by forcing the disk head to move frequently",
while NFS "writes the data file sequentially".  Reproducing that shape
requires a disk model that remembers where the head is: sequential
block accesses cost only transfer time, while jumps cost a seek plus
rotational latency.

The default geometry is calibrated to the DEC RZ58 (the 1.38 GB drive
on the paper's DECsystem 5900): ~12.9 ms average seek, 5400 rpm
(5.6 ms average rotational latency), ~2.5 MB/s media transfer rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.obs.registry import MetricSpec
from repro.sim.clock import SimClock

BLOCK_SIZE = 8192
"""The unit of disk transfer — one POSTGRES/FFS page."""

METRICS = (
    MetricSpec("disk.reads", "counter", "ops",
               "Disk read operations (a batched contiguous run counts once).",
               "repro.sim.disk", ("device",)),
    MetricSpec("disk.writes", "counter", "ops",
               "Disk write operations (a batched contiguous run counts once).",
               "repro.sim.disk", ("device",)),
    MetricSpec("disk.seeks", "counter", "ops",
               "Operations that paid a head seek (non-sequential access).",
               "repro.sim.disk", ("device",)),
    MetricSpec("disk.sequential_ops", "counter", "ops",
               "Operations that hit the next sequential block — transfer "
               "time only, no positioning charge.",
               "repro.sim.disk", ("device",)),
    MetricSpec("disk.bytes_read", "counter", "bytes",
               "Bytes transferred from the platter.",
               "repro.sim.disk", ("device",)),
    MetricSpec("disk.bytes_written", "counter", "bytes",
               "Bytes transferred to the platter.",
               "repro.sim.disk", ("device",)),
    MetricSpec("disk.busy_seconds", "counter", "seconds",
               "Simulated seconds the drive spent positioning and "
               "transferring.",
               "repro.sim.disk", ("device",)),
)


@dataclass(frozen=True)
class DiskGeometry:
    """Physical parameters of a simulated drive."""

    name: str
    capacity_bytes: int
    rpm: float
    min_seek_s: float       # single-cylinder seek
    avg_seek_s: float       # manufacturer average seek
    max_seek_s: float       # full-stroke seek
    transfer_rate_bps: float  # sustained media rate, bytes/second
    blocks_per_cylinder: int = 64

    @property
    def rotation_s(self) -> float:
        """Time for one full platter rotation."""
        return 60.0 / self.rpm

    @property
    def avg_rotational_delay_s(self) -> float:
        """Average rotational latency — half a rotation."""
        return self.rotation_s / 2.0

    @property
    def total_blocks(self) -> int:
        return self.capacity_bytes // BLOCK_SIZE

    @property
    def total_cylinders(self) -> int:
        return max(1, self.total_blocks // self.blocks_per_cylinder)


RZ58 = DiskGeometry(
    name="DEC RZ58",
    capacity_bytes=1_380_000_000,
    rpm=5400.0,
    min_seek_s=0.0025,
    avg_seek_s=0.0129,
    max_seek_s=0.025,
    transfer_rate_bps=2_500_000.0,
)


@dataclass
class DiskStats:
    """Operation counters, useful for ablation benches and tests."""

    reads: int = 0
    writes: int = 0
    seeks: int = 0
    sequential_ops: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_seconds: float = 0.0

    def snapshot(self) -> "DiskStats":
        return DiskStats(**vars(self))


@dataclass
class DiskModel:
    """Charges simulated time for block-addressed disk I/O.

    The model tracks the last block touched.  An access to
    ``last_block + 1`` is sequential (transfer time only); an access on
    the same cylinder costs rotational latency; anything else costs a
    distance-dependent seek plus rotational latency.  The seek curve is
    the standard ``a + b*sqrt(distance)`` approximation fit through the
    (min, avg, max) points of the geometry.
    """

    clock: SimClock
    geometry: DiskGeometry = RZ58
    stats: DiskStats = field(default_factory=DiskStats)
    _head_block: int = field(default=-(10 ** 9), repr=False)

    def _seek_time(self, from_cyl: int, to_cyl: int) -> float:
        distance = abs(to_cyl - from_cyl)
        if distance == 0:
            return 0.0
        g = self.geometry
        # a + b*sqrt(d) through (1, min_seek) and (C, max_seek).
        span = math.sqrt(g.total_cylinders) - 1.0
        if span <= 0:
            return g.avg_seek_s
        b = (g.max_seek_s - g.min_seek_s) / span
        a = g.min_seek_s - b
        return a + b * math.sqrt(distance)

    def _cylinder(self, block: int) -> int:
        return block // self.geometry.blocks_per_cylinder

    def _charge(self, block: int, nbytes: int) -> float:
        """Compute and charge the cost of touching ``block`` and
        transferring ``nbytes``."""
        g = self.geometry
        transfer = nbytes / g.transfer_rate_bps
        if block == self._head_block + 1:
            cost = transfer
            self.stats.sequential_ops += 1
        else:
            from_cyl = self._cylinder(max(self._head_block, 0))
            to_cyl = self._cylinder(block)
            seek = self._seek_time(from_cyl, to_cyl)
            if seek > 0.0:
                self.stats.seeks += 1
            cost = seek + g.avg_rotational_delay_s + transfer
        nblocks = max(1, (nbytes + BLOCK_SIZE - 1) // BLOCK_SIZE)
        self._head_block = block + nblocks - 1
        self.stats.busy_seconds += cost
        self.clock.advance(cost)
        return cost

    def read_block(self, block: int, nbytes: int = BLOCK_SIZE) -> float:
        """Charge for reading ``nbytes`` starting at ``block``."""
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        return self._charge(block, nbytes)

    def read_blocks(self, block: int, nblocks: int) -> float:
        """Charge for one contiguous multi-block read: a single
        positioning (seek + rotation unless the head is already there)
        followed by ``nblocks`` of pure media transfer.  This is the
        device-level batch a track-buffered controller performs for
        read-ahead; it counts as one read operation."""
        if nblocks <= 0:
            return 0.0
        nbytes = nblocks * BLOCK_SIZE
        self.stats.reads += 1
        self.stats.bytes_read += nbytes
        return self._charge(block, nbytes)

    def write_block(self, block: int, nbytes: int = BLOCK_SIZE) -> float:
        """Charge for writing ``nbytes`` starting at ``block``."""
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        return self._charge(block, nbytes)

    def write_blocks(self, block: int, nblocks: int) -> float:
        """Charge for one contiguous multi-block write: a single
        positioning followed by ``nblocks`` of pure media transfer — the
        write-side twin of ``read_blocks``, what a controller does for a
        gathered write-behind sweep.  Counts as one write operation."""
        if nblocks <= 0:
            return 0.0
        nbytes = nblocks * BLOCK_SIZE
        self.stats.writes += 1
        self.stats.bytes_written += nbytes
        return self._charge(block, nbytes)

    def flush(self) -> float:
        """Charge for a synchronous cache flush barrier (controller
        settle time).  Small but non-zero; commits pay it."""
        cost = self.geometry.rotation_s / 4.0
        self.stats.busy_seconds += cost
        self.clock.advance(cost)
        return cost

    def reset_head(self) -> None:
        """Forget head position (e.g. after the OS reuses the drive)."""
        self._head_block = -(10 ** 9)
