"""The sharded Inversion cluster.

A :class:`ShardedCluster` is N independent single-server Inversion
stacks — each its own :class:`~repro.db.database.Database`, mounted
:class:`~repro.core.filesystem.InversionFS` and
:class:`~repro.core.server.InversionServer` — glued together by a
:class:`~repro.shard.router.ShardRouter` and a two-phase-commit
coordinator (:mod:`repro.shard.twophase`).  Each shard runs on its own
simulated clock, so shards do work in parallel simulated time; the
cluster-level elapsed time of a run is the *maximum* over shard clocks,
and cross-shard operations synchronize the participants' clocks (a
message cannot arrive before it was sent).

Durability artifacts, per shard directory::

    <path>/cluster.json       shard count + partition policy
    <path>/shard<i>/...       one full Database per shard

plus, on any shard that has coordinated a cross-shard commit, a
**decision log** in its root device's metadata region (tag
``pg_2pc``): one ``D <gid> C`` line per *commit* decision, forced
before phase two begins.  Abort decisions are never logged — presumed
abort, exactly like the status file's missing-record rule.  Recovery
(:meth:`ShardedCluster.open`) reads every shard's in-doubt prepared
transactions and resolves each against its coordinator's decision log:
durable decision → commit, none → abort.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.core.filesystem import InversionFS
from repro.core.server import InversionServer
from repro.db.buffer import DEFAULT_BUFFERS
from repro.db.database import Database
from repro.errors import CatalogError
from repro.obs.registry import MetricSpec
from repro.shard.router import (
    HashPartitionPolicy,
    ShardRouter,
    SubtreePartitionPolicy,
    policy_from_config,
)

#: metadata tag of the coordinator's forced decision log.
DECISION_TAG = "pg_2pc"

_CLUSTER_FILE = "cluster.json"

METRICS = (
    MetricSpec("shard.routed_ops", "counter", "calls",
               "RPC requests routed to a shard by the sharded client "
               "(every dispatch, single- or cross-shard).",
               "repro.shard.cluster"),
    MetricSpec("shard.single_shard_txns", "counter", "txns",
               "Cluster transactions whose writes touched at most one "
               "shard — committed locally, zero coordination messages.",
               "repro.shard.cluster"),
    MetricSpec("shard.cross_shard_txns", "counter", "txns",
               "Cluster transactions that wrote on two or more shards "
               "and committed through the 2PC coordinator.",
               "repro.shard.cluster"),
    MetricSpec("shard.cross_shard_messages", "counter", "msgs",
               "Messages sent beyond a transaction's first shard: "
               "enlistments, routed requests, prepares, decision "
               "forces, and resolves.  Zero for single-shard work.",
               "repro.shard.cluster"),
    MetricSpec("shard.prepares", "counter", "ops",
               "2PC prepare requests sent to participant shards.",
               "repro.shard.cluster"),
    MetricSpec("shard.decisions", "counter", "ops",
               "Commit decisions forced to a coordinator decision log.",
               "repro.shard.cluster"),
    MetricSpec("shard.in_doubt_commits", "counter", "txns",
               "In-doubt prepared transactions committed during "
               "cluster recovery (decision log had their gid).",
               "repro.shard.cluster"),
    MetricSpec("shard.in_doubt_aborts", "counter", "txns",
               "In-doubt prepared transactions presumed aborted during "
               "cluster recovery (no durable decision).",
               "repro.shard.cluster"),
)


@dataclass
class ShardStats:
    """Cluster-lifetime counters, mirrored onto every shard's metrics
    registry under the ``shard.*`` families."""

    routed_ops: int = 0
    single_shard_txns: int = 0
    cross_shard_txns: int = 0
    cross_shard_messages: int = 0
    prepares: int = 0
    decisions: int = 0
    in_doubt_commits: int = 0
    in_doubt_aborts: int = 0


class ShardedCluster:
    """N Inversion servers behind one namespace."""

    def __init__(self, path: str, dbs: list[Database],
                 fss: list[InversionFS], router: ShardRouter) -> None:
        self.path = path
        self.dbs = dbs
        self.fss = fss
        self.servers = [InversionServer(fs) for fs in fss]
        self.router = router
        self.stats = ShardStats()
        self._bind_metrics()

    # -- construction ----------------------------------------------------

    @classmethod
    def create(cls, path: str, nshards: int, policy: str = "hash",
               assignments: dict[str, int] | None = None,
               buffer_pages: int = DEFAULT_BUFFERS,
               group_commit_window: float = 0.0) -> "ShardedCluster":
        """Create ``nshards`` fresh shard databases under ``path``.
        Each shard gets its own :class:`~repro.sim.clock.SimClock` —
        independent clocks are what let disjoint shard work overlap in
        simulated time instead of serializing on one timeline."""
        if os.path.exists(os.path.join(path, _CLUSTER_FILE)):
            raise CatalogError(f"cluster already exists at {path}")
        if policy == "subtree":
            pol = SubtreePartitionPolicy(assignments or {})
        elif policy == "hash":
            pol = HashPartitionPolicy()
        else:
            pol = policy_from_config({"policy": policy})
        os.makedirs(path, exist_ok=True)
        config = {"nshards": nshards}
        config.update(pol.config())
        with open(os.path.join(path, _CLUSTER_FILE), "w",
                  encoding="utf-8") as f:
            json.dump(config, f, indent=2)
        dbs, fss = [], []
        for i in range(nshards):
            db = Database.create(os.path.join(path, f"shard{i}"),
                                 buffer_pages=buffer_pages,
                                 group_commit_window=group_commit_window)
            dbs.append(db)
            fss.append(InversionFS.mkfs(db))
        return cls(path, dbs, fss, ShardRouter(pol, nshards))

    @classmethod
    def open(cls, path: str, buffer_pages: int = DEFAULT_BUFFERS,
             group_commit_window: float = 0.0) -> "ShardedCluster":
        """Reopen a cluster.  Per-shard recovery is the usual status
        file read; on top of it, cluster recovery resolves every
        in-doubt prepared transaction against its coordinator's
        decision log before the cluster serves anything."""
        config_path = os.path.join(path, _CLUSTER_FILE)
        if not os.path.exists(config_path):
            raise CatalogError(f"no cluster at {path}")
        with open(config_path, encoding="utf-8") as f:
            config = json.load(f)
        nshards = config["nshards"]
        dbs, fss = [], []
        for i in range(nshards):
            db = Database.open(os.path.join(path, f"shard{i}"),
                               buffer_pages=buffer_pages,
                               group_commit_window=group_commit_window)
            dbs.append(db)
            fss.append(InversionFS.attach(db))
        cluster = cls(path, dbs, fss,
                      ShardRouter(policy_from_config(config), nshards))
        cluster._recover_in_doubt()
        return cluster

    def _bind_metrics(self) -> None:
        stats = self.stats
        for db in self.dbs:
            for spec in METRICS:
                attr = spec.name.rsplit(".", 1)[-1]
                db.obs.metrics.register(spec).mirror(
                    lambda s=stats, a=attr: getattr(s, a))

    # -- lifecycle -------------------------------------------------------

    @property
    def nshards(self) -> int:
        return self.router.nshards

    def client(self, cache_paths: int = 0, cache_chunks: int = 0):
        from repro.shard.client import ShardedInversionClient
        return ShardedInversionClient(self, cache_paths=cache_paths,
                                      cache_chunks=cache_chunks)

    def expire_leases(self) -> int:
        """Revoke every outstanding client lease on every shard —
        clients discover it on their next poll and drop their caches.
        Returns the number of leases expired."""
        expired = 0
        for server in self.servers:
            if server.leases is not None:
                expired += server.leases.revoke_all()
        return expired

    def close(self) -> None:
        for db in self.dbs:
            db.close()

    def flush_caches(self) -> None:
        for db in self.dbs:
            db.flush_caches()

    def simulate_crash(self) -> None:
        """Power-failure model for the whole machine room: every
        shard's volatile state vanishes at once."""
        for db in self.dbs:
            db.simulate_crash()

    def wrap_devices(self, wrapper) -> None:
        """Interpose fault proxies over every device of every shard.
        Passing one shared :class:`~repro.testkit.faults.CrashController`
        to every proxy yields a single global ordering of the cluster's
        durable writes — which makes "crash at write #k" a cluster-wide
        coordinate covering prepares, decision forces, and phase-two
        commits on every shard."""
        for db in self.dbs:
            db.wrap_devices(wrapper)

    def unwrap_devices(self) -> None:
        for db in self.dbs:
            db.unwrap_devices()

    # -- routing / dispatch ---------------------------------------------

    def dispatch(self, shard: int, conn: int, method: str, *args, **kwargs):
        """One RPC to one shard (the sharded client's only doorway —
        every request is counted here)."""
        self.stats.routed_ops += 1
        return self.servers[shard].dispatch(conn, method, *args, **kwargs)

    # -- per-shard clocks -------------------------------------------------

    def clock(self, shard: int):
        return self.dbs[shard].clock

    def sync_clocks(self, shards) -> None:
        """Advance every listed shard's clock to the group maximum — a
        cross-shard message cannot be processed before it was sent, so
        coordination drags lagging participants forward."""
        shards = list(shards)
        if len(shards) < 2:
            return
        target = max(self.dbs[i].clock.now() for i in shards)
        for i in shards:
            clock = self.dbs[i].clock
            if clock.now() < target:
                clock.advance(target - clock.now())

    def elapsed_max(self, starts: list[float]) -> float:
        """Cluster elapsed time against per-shard start stamps: the
        slowest shard defines the wall (simulated) time of the run."""
        return max(self.dbs[i].clock.now() - starts[i]
                   for i in range(self.nshards))

    # -- the coordinator decision log -------------------------------------

    def _decision_device(self, shard: int):
        # Resolved through the switch on every call so a fault proxy
        # installed by wrap_devices gates decision forces too.
        switch = self.dbs[shard].switch
        return switch.get(switch.default_name)

    def log_decision(self, coord_shard: int, gid: str) -> None:
        """Durably record a *commit* decision for ``gid`` on the
        coordinator shard's root device.  This force is the 2PC commit
        point: once it returns, recovery will drive every prepared
        participant to commit; if it never happens, they all abort."""
        line = f"D {gid} C\n"
        self._decision_device(coord_shard).sync_append_meta(
            DECISION_TAG, line.encode("ascii"))
        self.stats.decisions += 1

    def decisions(self, coord_shard: int) -> set[str]:
        """gids with a durable commit decision on ``coord_shard``.  A
        final line without its newline is a torn decision force: the
        coordinator crashed mid-append, so no participant can have seen
        the decision — it is discarded (presumed abort)."""
        raw = self._decision_device(coord_shard).read_meta(DECISION_TAG)
        if not raw:
            return set()
        text = raw.decode("ascii", errors="replace")
        lines = text.splitlines()
        if lines and not text.endswith("\n"):
            lines = lines[:-1]
        out = set()
        for line in lines:
            tokens = line.split()
            if len(tokens) == 3 and tokens[0] == "D" and tokens[2] == "C":
                out.add(tokens[1])
        return out

    # -- recovery ---------------------------------------------------------

    @staticmethod
    def coordinator_of(gid: str) -> int:
        return int(gid.split(".", 1)[0])

    def _recover_in_doubt(self) -> None:
        """Resolve every shard's in-doubt prepared transactions.  The
        gid names its coordinator shard; a durable ``D <gid> C`` there
        means every participant prepared and the group committed —
        replay the local commit.  No decision means the coordinator
        never reached its commit point — presumed abort."""
        decision_cache: dict[int, set[str]] = {}
        for db in self.dbs:
            for xid, gid in sorted(db.tm.in_doubt().items()):
                coord = self.coordinator_of(gid)
                if coord not in decision_cache:
                    decision_cache[coord] = self.decisions(coord)
                commit = gid in decision_cache[coord]
                db.tm.resolve_in_doubt(xid, commit)
                if commit:
                    self.stats.in_doubt_commits += 1
                else:
                    self.stats.in_doubt_aborts += 1
        # Any lease granted before the crash is void: in-doubt
        # resolution may have changed state under entries a surviving
        # client still caches, and the crashed clients' sessions are
        # gone.  Expired leases surface as a revoked poll, after which
        # the client drops its cache and stops serving.
        self.expire_leases()
