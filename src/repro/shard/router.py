"""The shard router: which server owns a path.

Partitioning follows HopsFS's central insight: route by the *top-level
path component*, so that resolving any path deeper than ``/`` touches
exactly one shard.  A file's naming entries, its ``fileatt`` row and
its per-file chunk table all live in the owning shard's database
(chunk tables are created by that shard's ``InversionFS``, so they are
pinned to it by construction).  Only ``/`` itself is special: it
exists on every shard, and ``readdir("/")`` is the sorted union of the
shards' root listings.

Routing is a **pure function** of ``(path, policy, nshards)`` — no
lookup state, no caches — which is what the Hypothesis suite asserts:
the same path always maps to the same shard, and every path below a
top-level directory maps to that directory's shard.

Two policies:

- :class:`HashPartitionPolicy` — SHA-256 of the top-level component,
  mod shard count.  Balanced and assignment-free.
- :class:`SubtreePartitionPolicy` — an explicit ``component → shard``
  map for administrator-placed subtrees, falling back to the hash for
  unmapped components (so it is total and still pure).
"""

from __future__ import annotations

import hashlib

from repro.errors import InversionError


class ShardRouteError(InversionError):
    """A path (or policy configuration) the router cannot route."""


def top_component(path: str) -> str | None:
    """The first path component of an absolute path, or None for the
    root itself."""
    if not path.startswith("/"):
        raise ShardRouteError(f"path {path!r} is not absolute")
    stripped = path.strip("/")
    if not stripped:
        return None
    return stripped.split("/", 1)[0]


def _hash_shard(component: str, nshards: int) -> int:
    digest = hashlib.sha256(component.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") % nshards


class HashPartitionPolicy:
    """Hash the top-level component (PYTHONHASHSEED-independent)."""

    kind = "hash"

    def shard_of(self, component: str, nshards: int) -> int:
        return _hash_shard(component, nshards)

    def config(self) -> dict:
        return {"policy": self.kind}


class SubtreePartitionPolicy:
    """Explicit top-level assignments, hash fallback for the rest."""

    kind = "subtree"

    def __init__(self, assignments: dict[str, int]) -> None:
        self.assignments = dict(assignments)

    def shard_of(self, component: str, nshards: int) -> int:
        assigned = self.assignments.get(component)
        if assigned is None:
            return _hash_shard(component, nshards)
        if not 0 <= assigned < nshards:
            raise ShardRouteError(
                f"subtree {component!r} assigned to shard {assigned}, "
                f"but the cluster has {nshards}")
        return assigned

    def config(self) -> dict:
        return {"policy": self.kind, "assignments": self.assignments}


def policy_from_config(config: dict):
    """Rebuild a policy from its ``cluster.json`` representation."""
    kind = config.get("policy", "hash")
    if kind == "hash":
        return HashPartitionPolicy()
    if kind == "subtree":
        return SubtreePartitionPolicy(config.get("assignments", {}))
    raise ShardRouteError(f"unknown partition policy {kind!r}")


class ShardRouter:
    """Pure routing function over one policy and a fixed shard count."""

    def __init__(self, policy, nshards: int) -> None:
        if nshards < 1:
            raise ShardRouteError(f"need at least one shard, got {nshards}")
        self.policy = policy
        self.nshards = nshards

    def route(self, path: str) -> int:
        """The shard owning ``path``.  The root directory itself is
        pinned to shard 0 (it exists everywhere; 0 is the canonical
        copy for stat)."""
        component = top_component(path)
        if component is None:
            return 0
        shard = self.policy.shard_of(component, self.nshards)
        if not 0 <= shard < self.nshards:
            raise ShardRouteError(
                f"policy routed {path!r} to shard {shard} of {self.nshards}")
        return shard
