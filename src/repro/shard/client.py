"""The sharded client library.

:class:`ShardedInversionClient` exposes the same ``p_*`` surface as
:class:`~repro.core.library.InversionClient`, but in front of a
:class:`~repro.shard.cluster.ShardedCluster`.  The design rule is that
**the common case stays strictly single-shard**: path resolution, read,
write, create, and a single-file commit each touch exactly one shard
(the router is a pure function of the path's top-level component), so
a transaction whose writes stay inside one subtree pays zero
coordination messages — its commit is the ordinary local commit.

Cluster transactions enlist shards lazily: the first request routed to
a shard inside an open transaction sends that shard a ``p_begin``.  At
``p_commit`` the client counts the shards that actually *wrote*; one
writer (or none) commits locally, two or more run the two-phase
protocol (:mod:`repro.shard.twophase`).

Two operations are inherently multi-shard and are composed here:

- ``p_readdir("/")`` — the root directory exists on every shard; the
  listing is the sorted union of the shards' root listings.
- ``p_rename`` across shards — there is no shared storage to move, so
  the client *moves the bytes*: copy the file (or subtree, depth
  first) to the destination shard, then unlink the source, all inside
  one cluster transaction whose 2PC commit makes the move atomic:
  every observer sees the old name or the new name, never both and
  never neither.
"""

from __future__ import annotations

from repro.core.constants import CHUNK_SIZE, O_RDONLY, O_RDWR, SEEK_SET
from repro.errors import (
    BadFileDescriptorError,
    FileExistsError_,
    FileNotFoundError_,
    StructuralOpError,
    TransactionError,
)
from repro.shard.twophase import TwoPhaseCoordinator

_DIRECTORY = "directory"


class ShardedInversionClient:
    """One application's session with a sharded cluster: lazy per-shard
    server connections, one cluster-level transaction at a time."""

    def __init__(self, cluster, cache_paths: int = 0,
                 cache_chunks: int = 0) -> None:
        self.cluster = cluster
        self.coordinator = TwoPhaseCoordinator(cluster)
        #: shard → server connection id (opened on first use).
        self._conns: dict[int, int] = {}
        self._in_tx = False
        #: shards enlisted in the open transaction, enlistment order.
        self._tx_shards: list[int] = []
        #: cluster fd → (shard, inner fd).
        self._fds: dict[int, tuple[int, int]] = {}
        self._next_fd = 3
        #: router-aware caching: one lease-coherent cache per shard
        #: (each shard has its own epoch space), all sharing one stats
        #: block.  Only p_stat is served client-side — the namespace
        #: tiers are where a sharded tree pays repeated B-tree descents.
        self.cache_paths = cache_paths
        self.cache_chunks = cache_chunks
        self._caches: dict[int, object] = {}
        self._cache_stats = None
        if cache_paths > 0 or cache_chunks > 0:
            from repro.cache import CacheStats
            self._cache_stats = CacheStats()

    # -- plumbing --------------------------------------------------------

    def _route(self, path: str) -> int:
        return self.cluster.router.route(path)

    def _conn(self, shard: int) -> int:
        conn = self._conns.get(shard)
        if conn is None:
            server = self.cluster.servers[shard]
            conn = server.connect()
            self._conns[shard] = conn
            if self._cache_stats is not None:
                from repro.cache import ClientCache, bind_cache_stats
                leases = server.enable_leases()
                leases.subscribe(conn)
                self._caches[shard] = ClientCache(
                    leases, conn,
                    max_paths=max(1, self.cache_paths),
                    max_chunks=max(1, self.cache_chunks),
                    stats=self._cache_stats)
                obs = getattr(server.fs.db, "obs", None)
                if obs is not None:
                    bind_cache_stats(obs.metrics, self._cache_stats)
        return conn

    def _call(self, shard: int, method: str, *args, **kwargs):
        """One request to one shard, enlisting it in the open cluster
        transaction first.  Any message to a shard other than the
        transaction's first shard counts as cross-shard traffic."""
        conn = self._conn(shard)
        if self._in_tx:
            if shard not in self._tx_shards:
                self._tx_shards.append(shard)
                if shard != self._tx_shards[0]:
                    self.cluster.stats.cross_shard_messages += 1
                self.cluster.dispatch(shard, conn, "p_begin")
            if shard != self._tx_shards[0]:
                self.cluster.stats.cross_shard_messages += 1
        try:
            return self.cluster.dispatch(shard, conn, method,
                                         *args, **kwargs)
        finally:
            cache = self._caches.get(shard)
            if cache is not None and not cache.revoked:
                cache.poll()

    def _tx_wrote(self, shard: int) -> bool:
        """Did this shard's local transaction write?  Open handles with
        buffered-but-unflushed data count: their flush at prepare or
        commit will mark the transaction as writing."""
        server = self.cluster.servers[shard]
        session = server._sessions[self._conns[shard]]
        tx = session._tx
        if tx is None:
            return False
        if tx.wrote:
            return True
        fs = self.cluster.fss[shard]
        return any(h.tx is tx and h._open and h._wrote
                   for h in fs._handles)

    def xid_on(self, shard: int) -> int | None:
        """The session's open xid on ``shard``, if any (the sharded
        scheduler's lock-suspension seam)."""
        conn = self._conns.get(shard)
        if conn is None:
            return None
        session = self.cluster.servers[shard]._sessions.get(conn)
        if session is None or session._tx is None:
            return None
        return session._tx.xid

    def close(self) -> None:
        for shard, conn in list(self._conns.items()):
            self.cluster.servers[shard].disconnect(conn)
        for cache in self._caches.values():
            cache.revoke()
        self._caches.clear()
        self._conns.clear()
        self._in_tx = False
        self._tx_shards = []
        self._fds.clear()

    # -- transactions ----------------------------------------------------

    def p_begin(self) -> None:
        if self._in_tx:
            raise TransactionError(
                "only one transaction may be active at any time")
        self._in_tx = True
        self._tx_shards = []

    def p_abort(self) -> None:
        if not self._in_tx:
            raise TransactionError("no transaction in progress")
        try:
            self.coordinator.abort_group(self._conns, self._tx_shards)
        finally:
            self._in_tx = False
            self._tx_shards = []

    def p_commit(self) -> None:
        if not self._in_tx:
            raise TransactionError("no transaction in progress")
        participants = list(self._tx_shards)
        try:
            writers = [s for s in participants if self._tx_wrote(s)]
            if len(writers) >= 2:
                self.coordinator.commit_group(self._conns, participants,
                                              writers)
                self.cluster.stats.cross_shard_txns += 1
            else:
                # At most one shard wrote: the local commit *is* the
                # atomic commit point; read-only enlistments have
                # nothing durable to coordinate.
                for shard in participants:
                    self.cluster.dispatch(shard, self._conns[shard],
                                          "p_commit")
                if participants:
                    self.cluster.stats.single_shard_txns += 1
        finally:
            self._in_tx = False
            self._tx_shards = []

    def in_transaction(self) -> bool:
        return self._in_tx

    # -- file descriptors -------------------------------------------------

    def _register_fd(self, shard: int, inner_fd: int) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = (shard, inner_fd)
        return fd

    def _fd(self, fd: int) -> tuple[int, int]:
        entry = self._fds.get(fd)
        if entry is None:
            raise BadFileDescriptorError(f"bad file descriptor {fd}")
        return entry

    def p_creat(self, path: str, mode: int = O_RDWR,
                device: str | None = None, owner: str = "root",
                ftype: str = "plain") -> int:
        shard = self._route(path)
        inner = self._call(shard, "p_creat", path, mode, device=device,
                           owner=owner, ftype=ftype)
        return self._register_fd(shard, inner)

    def p_open(self, fname: str, mode: int = O_RDONLY,
               timestamp: float | None = None) -> int:
        shard = self._route(fname)
        inner = self._call(shard, "p_open", fname, mode, timestamp)
        return self._register_fd(shard, inner)

    def p_close(self, fd: int) -> None:
        shard, inner = self._fd(fd)
        self._call(shard, "p_close", inner)
        del self._fds[fd]

    def p_read(self, fd: int, length: int) -> bytes:
        shard, inner = self._fd(fd)
        return self._call(shard, "p_read", inner, length)

    def p_write(self, fd: int, buf: bytes) -> int:
        shard, inner = self._fd(fd)
        return self._call(shard, "p_write", inner, buf)

    def p_lseek(self, fd: int, offset_high: int, offset_low: int,
                whence: int = SEEK_SET) -> int:
        shard, inner = self._fd(fd)
        return self._call(shard, "p_lseek", inner, offset_high,
                          offset_low, whence)

    # -- namespace --------------------------------------------------------

    def p_mkdir(self, path: str, owner: str = "root") -> None:
        self._call(self._route(path), "p_mkdir", path, owner=owner)

    def p_unlink(self, path: str) -> None:
        self._call(self._route(path), "p_unlink", path)

    def p_rmdir(self, path: str) -> None:
        self._call(self._route(path), "p_rmdir", path)

    def p_stat(self, path: str, timestamp: float | None = None):
        shard = self._route(path)
        cache = self._caches.get(shard)
        if (cache is not None and not cache.revoked
                and not self._in_tx and timestamp is None):
            cache.poll()
            if not cache.revoked:
                msg = cache.lookup_negative(path)
                if msg is not None:
                    cache.stats.hit("negative")
                    raise FileNotFoundError_(msg)
                oid = cache.lookup_oid(path)
                if oid is not None:
                    att = cache.lookup_att(oid)
                    if att is not None:
                        cache.stats.hit("att")
                        return att
                cache.stats.miss("att")
                seq = cache.inval_seq
                try:
                    att = self._call(shard, "p_stat", path, timestamp)
                except FileNotFoundError_ as exc:
                    if cache.inval_seq == seq and not cache.revoked:
                        cache.fill_negative(path, str(exc))
                    raise
                if cache.inval_seq == seq and not cache.revoked:
                    cache.fill_path(path, att.file)
                    cache.fill_att(att.file, att)
                return att
        return self._call(shard, "p_stat", path, timestamp)

    def p_readdir(self, path: str,
                  timestamp: float | None = None,
                  cookie: str | None = None, limit: int | None = None):
        if path.strip("/"):
            if cookie is None and limit is None:
                return self._call(self._route(path), "p_readdir", path,
                                  timestamp)
            return self._call(self._route(path), "p_readdir", path,
                              timestamp, cookie=cookie, limit=limit)
        # The root is the one directory that spans shards: its listing
        # is the union of every shard's root entries (disjoint by
        # construction — each top-level name lives only on its owner).
        if cookie is None and limit is None:
            names: list[str] = []
            for shard in range(self.cluster.nshards):
                names.extend(self._call(shard, "p_readdir", "/", timestamp))
            return sorted(names)
        # Paged root listing: one page per shard, merged.  The cookie
        # is a name watermark, so it means the same thing on every
        # shard.  A shard that reports more entries bounds how far the
        # merge may safely advance (its unfetched names could fall
        # below another shard's page tail), so only names up to the
        # smallest such page tail are taken this round.
        candidates: list[str] = []
        tails: list[str] = []
        more_shards = False
        for shard in range(self.cluster.nshards):
            names, nxt = self._call(shard, "p_readdir", "/", timestamp,
                                    cookie=cookie, limit=limit)
            candidates.extend(names)
            if nxt is not None:
                more_shards = True
                if names:
                    tails.append(names[-1])
        candidates.sort()
        bound = min(tails) if tails else None
        eligible = [n for n in candidates if bound is None or n <= bound]
        out = eligible[:limit] if limit is not None else eligible
        more = more_shards or len(out) < len(candidates)
        return out, (out[-1] if out and more else None)

    # -- rename (the cross-shard composite) -------------------------------

    def p_rename(self, old: str, new: str) -> None:
        src, dst = self._route(old), self._route(new)
        if src == dst:
            self._call(src, "p_rename", old, new)
            return
        if self._in_tx:
            self._rename_across(old, new, src, dst)
            return
        # Auto-commit: the move happens in its own cluster transaction
        # (two writers → 2PC), mirroring the library's per-call
        # transaction for single-shard requests.
        self.p_begin()
        try:
            self._rename_across(old, new, src, dst)
        except BaseException:
            self.p_abort()
            raise
        self.p_commit()

    def _rename_across(self, old: str, new: str, src: int, dst: int) -> None:
        if not old.strip("/"):
            raise FileNotFoundError_("cannot rename the root directory")
        st = self._call(src, "p_stat", old)  # raises if old is missing
        try:
            self._call(dst, "p_stat", new)
        except FileNotFoundError_:
            pass
        else:
            raise FileExistsError_(f"{new!r} already exists")
        if st.type == _DIRECTORY:
            self._move_dir(old, new, src, dst)
        else:
            self._move_file(old, new, src, dst, size=st.size)

    def _move_file(self, old: str, new: str, src: int, dst: int,
                   size: int | None = None) -> None:
        if size is None:
            size = self._call(src, "p_stat", old).size
        fd = self._call(src, "p_open", old, O_RDONLY)
        data = self._call(src, "p_read", fd, size) if size else b""
        self._call(src, "p_close", fd)
        nfd = self._call(dst, "p_creat", new)
        if data:
            self._call(dst, "p_write", nfd, data)
        self._call(dst, "p_close", nfd)
        self._call(src, "p_unlink", old)

    # -- structural ops ----------------------------------------------------

    def p_truncate(self, path: str, size: int) -> None:
        self._call(self._route(path), "p_truncate", path, size)

    def p_reflink(self, src: str, dst: str,
                  device: str | None = None) -> tuple[int, int]:
        """By-reference copy when both names route to one shard; a
        physical copy inside one cluster transaction otherwise (shards
        share no storage, so references cannot cross them — the 2PC
        commit still makes the copy atomic)."""
        s, d = self._route(src), self._route(dst)
        if s == d:
            return self._call(s, "p_reflink", src, dst, device=device)
        return self._own_tx(lambda: self._copy_physical([src], dst, device))

    def p_concat(self, srcs, dst: str,
                 device: str | None = None) -> tuple[int, int]:
        srcs = list(srcs)
        if not srcs:
            raise FileNotFoundError_("concat requires at least one source")
        d = self._route(dst)
        if all(self._route(p) == d for p in srcs):
            return self._call(d, "p_concat", srcs, dst, device=device)
        for path in srcs[:-1]:
            st = self._call(self._route(path), "p_stat", path)
            if st.size % CHUNK_SIZE:
                raise StructuralOpError(
                    f"concat source {path!r} size {st.size} is not "
                    f"chunk-aligned ({CHUNK_SIZE})")
        return self._own_tx(lambda: self._copy_physical(srcs, dst, device))

    def p_slice(self, src: str, lo: int, hi: int, dst: str,
                device: str | None = None) -> tuple[int, int]:
        s, d = self._route(src), self._route(dst)
        if s == d:
            return self._call(s, "p_slice", src, lo, hi, dst, device=device)
        if lo % CHUNK_SIZE:
            raise StructuralOpError(
                f"slice start {lo} is not chunk-aligned ({CHUNK_SIZE})")
        st = self._call(s, "p_stat", src)
        if not (0 <= lo <= hi <= st.size):
            raise StructuralOpError(
                f"slice range [{lo}, {hi}) outside file of {st.size} bytes")

        def run() -> tuple[int, int]:
            data = self._read_whole(src)[lo:hi]
            return self._write_new(dst, data, device)
        return self._own_tx(run)

    def _own_tx(self, fn):
        """Run a multi-shard composite in the open cluster transaction,
        or in its own one (mirroring p_rename's auto-commit path)."""
        if self._in_tx:
            return fn()
        self.p_begin()
        try:
            result = fn()
        except BaseException:
            self.p_abort()
            raise
        self.p_commit()
        return result

    def _read_whole(self, path: str) -> bytes:
        shard = self._route(path)
        size = self._call(shard, "p_stat", path).size
        fd = self._call(shard, "p_open", path, O_RDONLY)
        data = self._call(shard, "p_read", fd, size) if size else b""
        self._call(shard, "p_close", fd)
        return data

    def _write_new(self, dst: str, data: bytes,
                   device: str | None) -> tuple[int, int]:
        shard = self._route(dst)
        fd = self._call(shard, "p_creat", dst, O_RDWR, device=device)
        if data:
            self._call(shard, "p_write", fd, data)
        self._call(shard, "p_close", fd)
        return 0, (len(data) + CHUNK_SIZE - 1) // CHUNK_SIZE

    def _copy_physical(self, srcs, dst: str,
                       device: str | None) -> tuple[int, int]:
        data = b"".join(self._read_whole(p) for p in srcs)
        return self._write_new(dst, data, device)

    def _move_dir(self, old: str, new: str, src: int, dst: int) -> None:
        """Depth-first subtree move.  Every child of ``old`` lives on
        the source shard (routing is by top-level component), so the
        recursion never fans out to more shards."""
        self._call(dst, "p_mkdir", new)
        for name in self._call(src, "p_readdir", old):
            child_old = old.rstrip("/") + "/" + name
            child_new = new.rstrip("/") + "/" + name
            child_st = self._call(src, "p_stat", child_old)
            if child_st.type == _DIRECTORY:
                self._move_dir(child_old, child_new, src, dst)
            else:
                self._move_file(child_old, child_new, src, dst,
                                size=child_st.size)
        self._call(src, "p_rmdir", old)
