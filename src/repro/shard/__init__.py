"""Multi-server Inversion: a sharded namespace over N independent
single-server stacks, with two-phase commit for the (rare) transactions
that cross shards.  See :mod:`repro.shard.router` for the partitioning
rule, :mod:`repro.shard.cluster` for the cluster lifecycle and the
coordinator decision log, :mod:`repro.shard.twophase` for the commit
protocol, :mod:`repro.shard.client` for the application surface, and
:mod:`repro.shard.sched` for the deterministic cluster scheduler."""

from repro.shard.client import ShardedInversionClient
from repro.shard.cluster import DECISION_TAG, ShardedCluster, ShardStats
from repro.shard.router import (
    HashPartitionPolicy,
    ShardRouteError,
    ShardRouter,
    SubtreePartitionPolicy,
    top_component,
)
from repro.shard.sched import ClientOp, ShardedScheduler, ShardSession
from repro.shard.twophase import TwoPhaseCoordinator

__all__ = [
    "ClientOp",
    "DECISION_TAG",
    "HashPartitionPolicy",
    "ShardRouteError",
    "ShardRouter",
    "ShardSession",
    "ShardStats",
    "ShardedCluster",
    "ShardedInversionClient",
    "ShardedScheduler",
    "SubtreePartitionPolicy",
    "TwoPhaseCoordinator",
    "top_component",
]
