"""The deterministic scheduler, stretched across shards.

:class:`ShardedScheduler` drives N :class:`ShardedInversionClient`
sessions against one :class:`~repro.shard.cluster.ShardedCluster` on a
single thread, the way :class:`~repro.sched.scheduler.MultiUserScheduler`
drives them against one server.  Programs are the same
:class:`~repro.sched.scheduler.Call` / :class:`~repro.sched.scheduler.Txn`
items (methods go through the sharded client, so routing, enlistment
and 2PC are exercised exactly as an application would), plus
:class:`ClientOp` — an arbitrary ``fn(client)`` run in **one slice**,
the probe primitive the atomicity tests use to observe two paths at a
single instant of the interleaving.

Each shard keeps its own simulated clock, so the cluster is really N
event loops multiplexed under one seed:

- every session has a **home shard** whose clock stamps its fairness
  bookkeeping, backoff timers and trace events;
- the picker first honors the starvation guard (overdue on the home
  clock), then picks the ready shard whose clock is furthest behind —
  the laggiest timeline runs next, which keeps the shards advancing
  together and makes the interleaving a pure function of (seed,
  programs);
- lock waits park per shard: each shard's
  :class:`~repro.db.locks.LockManager` gets its own wait strategy, and
  a parked session's deadline is measured on *that shard's* clock.
  Cross-shard deadlocks never appear in any single shard's waits-for
  graph, so they resolve by lock timeout — the timeout path here is
  load-bearing, not a safety net.

Admission control stays a single-server concern
(:class:`~repro.sched.scheduler.MultiUserScheduler`); the sharded
scheduler admits every session immediately.  Tracer span stacks are
not swapped per slice — run cluster workloads with tracing off.
"""

from __future__ import annotations

import hashlib
import json
import random

from repro.errors import (DeadlockError, LockTimeoutError,
                          SchedStalledError, SessionFailedError)
from repro.sched.scheduler import (
    DONE, FAILED, METRICS, PARKED, READY, RUNNING, SLEEPING,
    Call, Ref, SchedStats, Txn,
)


class ClientOp:
    """A direct cluster-client operation ``fn(client)`` run in one
    scheduler slice.  Because the whole function executes without the
    scheduler switching sessions (unless it blocks on a lock), a
    ClientOp that reads two paths sees them at one instant of the
    interleaving — the observation primitive the cross-shard atomicity
    tests are built on.  Valid at top level or inside a :class:`Txn`
    (where ``fn`` runs under the session's open cluster transaction)."""

    __slots__ = ("_label", "fn")

    def __init__(self, label: str, fn) -> None:
        self._label = label
        self.fn = fn

    @property
    def label(self) -> str:
        return self._label

    def __repr__(self) -> str:
        return f"ClientOp({self._label!r})"


class _Unit:
    """One compiled program item (a Txn block or a lone Call/ClientOp)."""

    __slots__ = ("txn", "items", "ordinals", "attempt")

    def __init__(self, txn, items, ordinals) -> None:
        self.txn = txn
        self.items = items
        self.ordinals = ordinals
        self.attempt = 0


class ShardSession:
    """One cluster client session and its scheduling bookkeeping.  All
    times are on the session's home-shard clock."""

    def __init__(self, sid: int, name: str, units: list[_Unit],
                 client, home: int, submitted_at: float) -> None:
        self.sid = sid
        self.name = name
        self.units = units
        self.client = client
        self.home = home
        self.state = READY
        self.unit_idx = 0
        self.phase = -1
        self.values: dict[int, object] = {}
        self.wake_time = 0.0
        self.ready_since = submitted_at
        self.error: str | None = None
        self.slices = 0
        self.retries = 0
        self.park_seconds = 0.0
        self.max_park = 0.0
        self.max_ready_wait = 0.0

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED)

    def report_row(self) -> dict:
        return {
            "name": self.name,
            "home": self.home,
            "state": self.state,
            "slices": self.slices,
            "retries": self.retries,
            "lock_park_s": self.park_seconds,
            "max_park_s": self.max_park,
            "max_ready_wait_s": self.max_ready_wait,
            "error": self.error,
        }


class _ShardWaitStrategy:
    """One shard's lock-manager wait path under the sharded scheduler:
    park the waiting session, run the rest of the cluster, measure the
    timeout on this shard's clock."""

    def __init__(self, sched: "ShardedScheduler", shard: int) -> None:
        self.sched = sched
        self.shard = shard

    def suspended_xids(self) -> set:
        """Local xids of sessions parked beneath the current one on the
        scheduler's call stack (stack-suspended waiters must not block
        the requester's FIFO position — see the single-server wait
        strategy)."""
        out = set()
        for session in self.sched._running[:-1]:
            xid = session.client.xid_on(self.shard)
            if xid is not None:
                out.add(xid)
        return out

    def start(self, lm, xid: int, resource, mode: str) -> dict:
        sched = self.sched
        now = sched.cluster.clock(self.shard).now()
        session = sched._running[-1] if sched._running else None
        if session is not None:
            session.state = PARKED
            sched.stats.lock_parks += 1
            sched._event("park", session, f"{mode} {resource!r}")
        return {"start": now, "deadline": now + lm.timeout_s,
                "session": session}

    def wait_round(self, lm, ctx: dict) -> bool:
        sched = self.sched
        clock = sched.cluster.clock(self.shard)
        if clock.now() >= ctx["deadline"]:
            return False
        acct = sched.cluster.dbs[self.shard].obs.tx
        waiter_xid = acct.current_xid()
        lm._cond.release()
        try:
            sched._step_while_parked(self.shard, ctx["deadline"])
        finally:
            acct.activate(waiter_xid)
            lm._cond.acquire()
        return clock.now() < ctx["deadline"]

    def finish(self, lm, ctx: dict, xid: int) -> float:
        sched = self.sched
        elapsed = sched.cluster.clock(self.shard).now() - ctx["start"]
        session = ctx["session"]
        if session is not None:
            session.state = RUNNING
            session.park_seconds += elapsed
            if elapsed > session.max_park:
                session.max_park = elapsed
            sched._event("unpark", session, f"{elapsed:.6f}")
        return elapsed


class ShardedScheduler:
    """Seeded cooperative event loop over N sessions of one cluster."""

    def __init__(self, cluster, seed: int = 0, wait_quantum: float = 1e-4,
                 backoff_base: float = 0.005, backoff_cap: float = 0.08,
                 max_retries: int = 10, fairness_bound: float = 0.5) -> None:
        self.cluster = cluster
        self.seed = seed
        self.rng = random.Random(seed)
        self.wait_quantum = wait_quantum
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_retries = max_retries
        self.fairness_bound = fairness_bound
        self.stats = SchedStats()
        self.sessions: list[ShardSession] = []
        #: call stack of sessions currently inside a slice.
        self._running: list[ShardSession] = []
        self._last_ran: ShardSession | None = None
        #: deterministic event trace:
        #: (home_time, home_shard, kind, session, detail).
        self.trace: list[tuple] = []
        #: hook called as fn(session, tag) right after a Txn's cluster
        #: commit returns (the sharded crash testkit's oracle seam).
        self.commit_hook = None
        self._closed = False
        self._old_wait_strategies = []
        for shard, db in enumerate(cluster.dbs):
            self._old_wait_strategies.append(db.locks.wait_strategy)
            db.locks.wait_strategy = _ShardWaitStrategy(self, shard)
        self._bind_metrics()

    # -- wiring ----------------------------------------------------------

    def _bind_metrics(self) -> None:
        stats = self.stats
        for db in self.cluster.dbs:
            for spec in METRICS:
                attr = spec.name.rsplit(".", 1)[-1]
                db.obs.metrics.register(spec).mirror(
                    lambda s=stats, a=attr: getattr(s, a))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for db, old in zip(self.cluster.dbs, self._old_wait_strategies):
            db.locks.wait_strategy = old
        for session in self.sessions:
            session.client.close()

    def __enter__(self) -> "ShardedScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sessions --------------------------------------------------------

    def add_session(self, program, name: str | None = None,
                    home: int | None = None) -> ShardSession:
        """Submit a session program.  ``home`` names the shard whose
        clock stamps the session's scheduling bookkeeping; by default
        it is routed from the first absolute path in the program (a
        session that works one subtree is homed where its data
        lives)."""
        sid = len(self.sessions)
        units = self._compile(program)
        if home is None:
            home = self._infer_home(program)
        session = ShardSession(sid, name or f"s{sid}", units,
                               self.cluster.client(), home,
                               self.cluster.clock(home).now())
        self.sessions.append(session)
        self._event("admit", session, f"home={home}")
        return session

    def _infer_home(self, program) -> int:
        for item in program:
            items = item.items if isinstance(item, Txn) else [item]
            for sub in items:
                if isinstance(sub, Call):
                    for arg in sub.args:
                        if isinstance(arg, str) and arg.startswith("/"):
                            return self.cluster.router.route(arg)
        return 0

    @staticmethod
    def _compile(program) -> list[_Unit]:
        units: list[_Unit] = []
        ordinal = 0
        for item in program:
            if isinstance(item, Txn):
                for sub in item.items:
                    if not isinstance(sub, (Call, ClientOp)):
                        raise TypeError(f"unknown Txn item {sub!r}")
                ords = list(range(ordinal, ordinal + len(item.items)))
                ordinal += len(item.items)
                units.append(_Unit(item, item.items, ords))
            elif isinstance(item, (Call, ClientOp)):
                units.append(_Unit(None, [item], [ordinal]))
                ordinal += 1
            else:
                raise TypeError(f"unknown program item {item!r}")
        return units

    def _retire(self, session: ShardSession, state: str) -> None:
        session.state = state
        session.client.close()
        self._event(state, session, session.error or "")

    # -- the event loop --------------------------------------------------

    def run(self, strict: bool = True) -> dict:
        while True:
            self._wake_sleepers()
            if all(s.finished for s in self.sessions):
                break
            ready = [s for s in self.sessions if s.state == READY]
            if ready:
                self._run_slice(self._pick(ready))
                continue
            if not self._advance_to_next_sleeper():
                raise SchedStalledError(
                    "unfinished sessions but nothing runnable: "
                    + ", ".join(f"{s.name}={s.state}" for s in self.sessions
                                if not s.finished))
        failed = [s for s in self.sessions if s.state == FAILED]
        if strict and failed:
            raise SessionFailedError(
                "; ".join(f"{s.name}: {s.error}" for s in failed))
        return self.fairness_report()

    def _wake_sleepers(self) -> None:
        for session in self.sessions:
            if (session.state == SLEEPING
                    and session.wake_time
                    <= self.cluster.clock(session.home).now()):
                session.state = READY
                session.ready_since = self.cluster.clock(session.home).now()

    def _advance_to_next_sleeper(self) -> bool:
        """Advance one home clock to its soonest sleeper's wake time.
        Returns False if no session is sleeping (the loop is stalled)."""
        sleepers = [s for s in self.sessions if s.state == SLEEPING]
        if not sleepers:
            return False
        target = min(sleepers,
                     key=lambda s: (s.wake_time
                                    - self.cluster.clock(s.home).now(),
                                    s.sid))
        clock = self.cluster.clock(target.home)
        clock.advance(max(0.0, target.wake_time - clock.now()))
        return True

    def _pick(self, ready: list[ShardSession]) -> ShardSession:
        """Starvation guard first (overdue on the home clock, oldest
        wait wins), then the shard whose clock is furthest behind, then
        a seeded lottery among that shard's ready sessions."""
        overdue = [
            s for s in ready
            if (self.cluster.clock(s.home).now() - s.ready_since
                >= self.fairness_bound)
        ]
        if overdue:
            return min(overdue, key=lambda s: (s.ready_since, s.sid))
        shards = sorted({s.home for s in ready},
                        key=lambda i: (self.cluster.clock(i).now(), i))
        pool = sorted((s for s in ready if s.home == shards[0]),
                      key=lambda s: s.sid)
        return pool[self.rng.randrange(len(pool))]

    def _step_while_parked(self, shard: int, deadline: float) -> None:
        """One scheduling step on behalf of a session parked on
        ``shard``: run another ready session, else advance toward the
        next sleeper, else burn the parked shard's clock straight to
        the waiter's deadline."""
        self._wake_sleepers()
        ready = [s for s in self.sessions if s.state == READY]
        if ready:
            self._run_slice(self._pick(ready))
            return
        if self._advance_to_next_sleeper():
            return
        self.stats.idle_advances += 1
        clock = self.cluster.clock(shard)
        clock.advance(max(self.wait_quantum,
                          deadline + self.wait_quantum - clock.now()))

    # -- slices ----------------------------------------------------------

    def _resolve(self, session: ShardSession, value):
        if isinstance(value, Ref):
            if value.ordinal not in session.values:
                raise SchedStalledError(
                    f"{session.name}: Ref({value.ordinal}) before its "
                    f"request completed")
            return session.values[value.ordinal]
        return value

    def _next_request(self, session: ShardSession):
        """(label, thunk, ordinal) for the session's next request."""
        unit = session.units[session.unit_idx]
        client = session.client
        if unit.txn is not None:
            if session.phase == -1:
                return "p_begin", client.p_begin, None
            if session.phase == len(unit.items):
                if unit.txn.abort:
                    return "p_abort", client.p_abort, None
                return "p_commit", client.p_commit, None
            item = unit.items[session.phase]
            ordinal = unit.ordinals[session.phase]
        else:
            item = unit.items[0]
            ordinal = unit.ordinals[0]
        if isinstance(item, ClientOp):
            return item.label, (lambda: item.fn(client)), ordinal
        args = tuple(self._resolve(session, a) for a in item.args)
        kwargs = {k: self._resolve(session, v)
                  for k, v in item.kwargs.items()}
        method = getattr(client, item.method)
        return item.method, (lambda: method(*args, **kwargs)), ordinal

    def _run_slice(self, session: ShardSession) -> None:
        unit = session.units[session.unit_idx]
        label, thunk, ordinal = self._next_request(session)
        self.stats.slices += 1
        session.slices += 1
        if self._last_ran is not session:
            self.stats.context_switches += 1
        self._last_ran = session
        now = self.cluster.clock(session.home).now()
        if session.state == READY:
            waited = now - session.ready_since
            if waited > session.max_ready_wait:
                session.max_ready_wait = waited
        session.state = RUNNING
        self._running.append(session)
        self._event("slice", session, label)
        # Point every shard's per-xid accountant at this session's
        # local transaction there (or at no one) — the single-server
        # context switch, once per timeline.
        for shard, db in enumerate(self.cluster.dbs):
            db.obs.tx.activate(session.client.xid_on(shard))
        try:
            result = thunk()
        except (DeadlockError, LockTimeoutError) as exc:
            self._handle_victim(session, unit, exc)
            return
        finally:
            self._running.pop()
            if session.state == RUNNING:
                session.state = READY
                session.ready_since = self.cluster.clock(session.home).now()
        if ordinal is not None:
            session.values[ordinal] = result
        self._advance_pc(session, unit)

    def _advance_pc(self, session: ShardSession, unit: _Unit) -> None:
        if unit.txn is None:
            done_unit = True
        elif session.phase == len(unit.items):
            if self.commit_hook is not None and not unit.txn.abort:
                self.commit_hook(session, unit.txn.tag)
            done_unit = True
        else:
            session.phase += 1
            done_unit = False
        if done_unit:
            unit.attempt = 0
            session.unit_idx += 1
            session.phase = -1
            if session.unit_idx >= len(session.units):
                self._retire(session, DONE)

    def _handle_victim(self, session: ShardSession, unit: _Unit,
                       exc) -> None:
        """Deadlock-victim / lock-timeout recovery, cluster edition:
        abort the open cluster transaction (every enlisted shard), back
        off on the home clock, re-run the unit from its beginning."""
        self._event("victim", session, type(exc).__name__)
        if session.client.in_transaction():
            try:
                session.client.p_abort()
            except Exception:
                pass
        for ordinal in unit.ordinals:
            session.values.pop(ordinal, None)
        session.phase = -1
        unit.attempt += 1
        if unit.attempt > self.max_retries:
            session.error = (f"retry budget exhausted after "
                             f"{self.max_retries} attempts: {exc}")
            self._retire(session, FAILED)
            return
        self.stats.retries += 1
        session.retries += 1
        backoff = min(self.backoff_cap,
                      self.backoff_base * (2 ** (unit.attempt - 1)))
        self.stats.backoff_seconds.observe(backoff)
        session.state = SLEEPING
        session.wake_time = self.cluster.clock(session.home).now() + backoff
        self._event("retry", session,
                    f"attempt={unit.attempt} backoff={backoff:.6f}")

    # -- tracing / reporting --------------------------------------------

    def _event(self, kind: str, session: ShardSession,
               detail: str = "") -> None:
        self.trace.append((round(self.cluster.clock(session.home).now(), 9),
                           session.home, kind, session.name, detail))

    def trace_hash(self) -> str:
        """SHA-256 over the event trace — the cluster determinism gate:
        same seed, same programs, same shard count ⇒ same hash."""
        blob = json.dumps(self.trace, separators=(",", ":")).encode()
        return hashlib.sha256(blob).hexdigest()

    def fairness_report(self) -> dict:
        rows = [s.report_row() for s in self.sessions]
        max_ready_wait = max((r["max_ready_wait_s"] for r in rows),
                             default=0.0)
        max_park = max((r["max_park_s"] for r in rows), default=0.0)
        return {
            "seed": self.seed,
            "nshards": self.cluster.nshards,
            "sessions": rows,
            "max_ready_wait_s": max_ready_wait,
            "max_park_s": max_park,
            "fairness_bound_s": self.fairness_bound,
            "starved": max_ready_wait > self.fairness_bound
            + self.wait_quantum,
            "slices": self.stats.slices,
            "context_switches": self.stats.context_switches,
            "lock_parks": self.stats.lock_parks,
            "retries": self.stats.retries,
            "idle_advances": self.stats.idle_advances,
        }
