"""The two-phase-commit coordinator.

Commit of a cluster transaction that wrote on two or more shards runs
the textbook presumed-abort protocol, built entirely from durable
primitives the single-server system already has:

1. **Prepare** — each writing participant forces its dirty pages and a
   ``P <xid> <gid> <start>`` record to its own status file
   (:meth:`~repro.db.transactions.TransactionManager.prepare`, via the
   ``p_prepare`` RPC).  A prepared transaction keeps its locks, is
   invisible, and survives both disconnect and crash.
2. **Decide** — the coordinator (the first writing participant's
   shard) forces ``D <gid> C`` to its decision log
   (:meth:`~repro.shard.cluster.ShardedCluster.log_decision`).  This
   single append is the atomic commit point for the whole group.
3. **Resolve** — each participant forces its final ``C`` record and
   releases its locks (``p_resolve``).  Read-only participants never
   prepared; they just commit locally (nothing durable to decide).

A crash anywhere leaves a recoverable history: before the decision
force, no participant can be driven to commit, so recovery presumes
abort; after it, every participant has a durable ``P`` record and
recovery replays the commit from the decision log.  Torn tails on any
of the three appends collapse to one of those two cases.
"""

from __future__ import annotations

from repro.errors import SimulatedCrashError, TransactionError


class TwoPhaseCoordinator:
    """Drives prepare/decide/resolve over a cluster client's enlisted
    shards.  Stateless between calls — the durable state lives in the
    shards' status files and the coordinator shard's decision log."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster

    def commit_group(self, conns: dict[int, int], participants: list[int],
                     writers: list[int]) -> None:
        """Commit one cluster transaction.  ``conns`` maps shard →
        server connection id; ``participants`` is every enlisted shard
        (enlistment order); ``writers`` the subset whose local
        transaction wrote.  The caller guarantees ``len(writers) >= 2``
        — smaller groups commit locally without coordination."""
        cluster = self.cluster
        coord = writers[0]
        coord_tx = cluster.servers[coord]._sessions[conns[coord]]._tx
        if coord_tx is None:
            raise TransactionError(
                f"no open transaction on coordinator shard {coord}")
        gid = f"{coord}.{coord_tx.xid}"

        # Phase one: every writer durably promises it can commit.
        prepared: list[int] = []
        try:
            for shard in writers:
                cluster.dispatch(shard, conns[shard], "p_prepare", gid)
                prepared.append(shard)
                cluster.stats.prepares += 1
                cluster.stats.cross_shard_messages += 1
        except SimulatedCrashError:
            # The machine room is down; nothing more can be forced.
            raise
        except BaseException:
            self._abort_prepared(conns, participants, prepared)
            raise

        # The commit point: one forced append on the coordinator.  The
        # participants' clocks synchronize here — prepare acks flowed
        # in, the decision flows out.
        cluster.sync_clocks(participants)
        cluster.log_decision(coord, gid)
        cluster.stats.cross_shard_messages += 1

        # Phase two: the decision is durable; drive everyone to it.
        for shard in writers:
            cluster.dispatch(shard, conns[shard], "p_resolve", True)
            cluster.stats.cross_shard_messages += 1
        for shard in participants:
            if shard not in writers:
                cluster.dispatch(shard, conns[shard], "p_commit")
        cluster.sync_clocks(participants)

    def abort_group(self, conns: dict[int, int],
                    participants: list[int]) -> None:
        """Abort every enlisted shard's local transaction (none of
        them is prepared — prepare only happens inside
        :meth:`commit_group`)."""
        for shard in participants:
            self.cluster.dispatch(shard, conns[shard], "p_abort")

    def _abort_prepared(self, conns: dict[int, int], participants: list[int],
                        prepared: list[int]) -> None:
        """Best-effort rollback after a phase-one failure: resolve the
        already-prepared shards to abort, plain-abort the rest.  No
        decision was logged, so recovery agrees (presumed abort) even
        if some of these messages are lost."""
        for shard in participants:
            try:
                if shard in prepared:
                    self.cluster.dispatch(shard, conns[shard],
                                          "p_resolve", False)
                else:
                    self.cluster.dispatch(shard, conns[shard], "p_abort")
            except Exception:
                pass
