"""The differential file-system oracle.

:class:`ModelFS` is a dict-based model of the visible state of one
Inversion mount: path → file bytes, or ``None`` for a directory.  The
crash-schedule explorer applies a workload's operations to the model
only when the corresponding transaction's commit record became durable,
so after a crash the model holds exactly what the recovered database
must show.  The Hypothesis differential suite drives the same model
against :class:`~repro.core.filesystem.InversionFS` with random
operation sequences and commit/abort interleavings.

Semantics mirror ``InversionFS`` deliberately, including the subtle
ones: a whole-file overwrite with *shorter* data leaves the old tail in
place (``write_file`` writes from offset 0 and file size only grows),
and ``rename`` requires the target name to be free.
"""

from __future__ import annotations

from repro.core.constants import CHUNK_SIZE
from repro.errors import InversionError


class ModelError(InversionError):
    """The model rejected an operation the real fs should also reject."""


def _parent(path: str) -> str:
    head, _sep, _tail = path.rpartition("/")
    return head or "/"


class ModelFS:
    """In-memory model: ``entries[path]`` is ``bytes`` for a plain file,
    ``None`` for a directory.  The root directory is implicit."""

    def __init__(self, entries: dict[str, bytes | None] | None = None) -> None:
        self.entries: dict[str, bytes | None] = dict(entries or {})

    def copy(self) -> "ModelFS":
        return ModelFS(self.entries)

    # -- interrogation ----------------------------------------------------

    def exists(self, path: str) -> bool:
        return path == "/" or path in self.entries

    def is_dir(self, path: str) -> bool:
        return path == "/" or (path in self.entries
                               and self.entries[path] is None)

    def is_file(self, path: str) -> bool:
        return isinstance(self.entries.get(path), bytes)

    def children(self, path: str) -> list[str]:
        prefix = "/" if path == "/" else path + "/"
        return [p for p in self.entries
                if p.startswith(prefix) and "/" not in p[len(prefix):]]

    def state(self) -> dict[str, bytes | None]:
        """An immutable-ish snapshot for equality comparison."""
        return dict(self.entries)

    # -- validity ---------------------------------------------------------

    def why_invalid(self, op: tuple) -> str | None:
        """None if the fs should accept ``op``, else a reason string —
        the same acceptance rules InversionFS enforces."""
        kind, args = op[0], op[1:]
        if kind == "mkdir":
            (path,) = args
            if not self.is_dir(_parent(path)):
                return "parent is not an existing directory"
            if self.exists(path):
                return "path already exists"
        elif kind == "write":
            path = args[0]
            if not self.is_dir(_parent(path)):
                return "parent is not an existing directory"
            if self.is_dir(path):
                return "path is a directory"
        elif kind == "unlink":
            (path,) = args
            if not self.is_file(path):
                return "not an existing plain file"
        elif kind == "rmdir":
            (path,) = args
            if path == "/" or not self.is_dir(path):
                return "not a removable directory"
            if self.children(path):
                return "directory not empty"
        elif kind == "rename":
            old, new = args
            if old == "/" or not self.exists(old):
                return "source does not exist"
            if self.exists(new):
                return "target already exists"
            if not self.is_dir(_parent(new)):
                return "target parent is not an existing directory"
            if new == old or new.startswith(old + "/"):
                return "target inside source subtree"
        elif kind == "reflink":
            src, dst = args
            return self._why_invalid_clone_dst((src,), dst)
        elif kind == "concat":
            srcs, dst = args
            if not srcs:
                return "no sources"
            reason = self._why_invalid_clone_dst(srcs, dst)
            if reason is not None:
                return reason
            for src in srcs[:-1]:
                if len(self.entries[src]) % CHUNK_SIZE != 0:
                    return "non-final source is not chunk-aligned"
        elif kind == "slice":
            src, lo, hi, dst = args
            reason = self._why_invalid_clone_dst((src,), dst)
            if reason is not None:
                return reason
            if lo % CHUNK_SIZE != 0:
                return "slice start is not chunk-aligned"
            if not (0 <= lo <= hi <= len(self.entries[src])):
                return "slice range outside the file"
        elif kind == "truncate":
            path, size = args
            if not self.is_file(path):
                return "not an existing plain file"
            if size < 0:
                return "negative size"
        else:
            raise ValueError(f"unknown op kind {kind!r}")
        return None

    def _why_invalid_clone_dst(self, srcs, dst: str) -> str | None:
        """The shared acceptance rules of every structural op: plain-file
        sources, a free destination under an existing directory."""
        for src in srcs:
            if not self.is_file(src):
                return "source is not an existing plain file"
        if self.exists(dst):
            return "destination already exists"
        if not self.is_dir(_parent(dst)):
            return "destination parent is not an existing directory"
        return None

    # -- mutation ---------------------------------------------------------

    def apply(self, op: tuple) -> None:
        reason = self.why_invalid(op)
        if reason is not None:
            raise ModelError(f"{op}: {reason}")
        kind, args = op[0], op[1:]
        if kind == "mkdir":
            self.entries[args[0]] = None
        elif kind == "write":
            path, data = args
            old = self.entries.get(path) or b""
            # write_file writes from offset 0 and never truncates: a
            # shorter overwrite keeps the old tail.
            self.entries[path] = data + old[len(data):]
        elif kind == "unlink":
            del self.entries[args[0]]
        elif kind == "rmdir":
            del self.entries[args[0]]
        elif kind == "rename":
            old, new = args
            moved = self.entries.pop(old)
            self.entries[new] = moved
            if moved is None:  # directory: the subtree moves with it
                for path in [p for p in self.entries
                             if p.startswith(old + "/")]:
                    self.entries[new + path[len(old):]] = self.entries.pop(path)
        # Structural ops are by-reference in the real fs, but the model
        # only sees visible bytes — a physical copy is the same thing.
        elif kind == "reflink":
            src, dst = args
            self.entries[dst] = self.entries[src]
        elif kind == "concat":
            srcs, dst = args
            self.entries[dst] = b"".join(self.entries[s] for s in srcs)
        elif kind == "slice":
            src, lo, hi, dst = args
            self.entries[dst] = self.entries[src][lo:hi]
        elif kind == "truncate":
            path, size = args
            old = self.entries[path]
            self.entries[path] = old[:size].ljust(size, b"\0")

    def apply_many(self, ops) -> None:
        for op in ops:
            self.apply(op)

    def preview(self, ops) -> "ModelFS":
        """The state this model would reach if ``ops`` committed."""
        scratch = self.copy()
        scratch.apply_many(ops)
        return scratch


def apply_fs_op(fs, tx, op: tuple) -> None:
    """Apply one model op to the real file system under ``tx``."""
    kind, args = op[0], op[1:]
    if kind == "mkdir":
        fs.mkdir(tx, args[0])
    elif kind == "write":
        fs.write_file(tx, args[0], args[1])
    elif kind == "unlink":
        fs.unlink(tx, args[0])
    elif kind == "rmdir":
        fs.rmdir(tx, args[0])
    elif kind == "rename":
        fs.rename(tx, args[0], args[1])
    elif kind == "reflink":
        fs.reflink(tx, args[0], args[1])
    elif kind == "concat":
        fs.concat(tx, list(args[0]), args[1])
    elif kind == "slice":
        fs.slice(tx, args[0], args[1], args[2], args[3])
    elif kind == "truncate":
        fs.truncate(tx, args[0], args[1])
    else:
        raise ValueError(f"unknown op kind {kind!r}")


def apply_client_op(client, op: tuple) -> None:
    """Apply one model op through a client library surface (the sharded
    client, or any object speaking ``p_*``) — same semantics as
    :func:`apply_fs_op`, but routed the way an application's requests
    are.  ``write`` mirrors ``write_file``: from offset zero, never
    truncating."""
    from repro.core.constants import O_RDWR
    from repro.errors import FileNotFoundError_
    kind, args = op[0], op[1:]
    if kind == "mkdir":
        client.p_mkdir(args[0])
    elif kind == "write":
        path, data = args
        try:
            fd = client.p_open(path, O_RDWR)
        except FileNotFoundError_:
            fd = client.p_creat(path)
        client.p_write(fd, data)
        client.p_close(fd)
    elif kind == "unlink":
        client.p_unlink(args[0])
    elif kind == "rmdir":
        client.p_rmdir(args[0])
    elif kind == "rename":
        client.p_rename(args[0], args[1])
    elif kind == "reflink":
        client.p_reflink(args[0], args[1])
    elif kind == "concat":
        client.p_concat(list(args[0]), args[1])
    elif kind == "slice":
        client.p_slice(args[0], args[1], args[2], args[3])
    elif kind == "truncate":
        client.p_truncate(args[0], args[1])
    else:
        raise ValueError(f"unknown op kind {kind!r}")


def harvest_state(fs) -> dict[str, bytes | None]:
    """The committed visible state of a mounted fs, in the model's
    shape: every path under ``/`` mapped to its full contents (files)
    or ``None`` (directories)."""
    state: dict[str, bytes | None] = {}

    def walk(dirpath: str) -> None:
        for name in fs.readdir(dirpath):
            path = ("" if dirpath == "/" else dirpath) + "/" + name
            if fs.stat(path).type == "directory":
                state[path] = None
                walk(path)
            else:
                state[path] = fs.read_file(path)

    walk("/")
    return state
