"""The crash-schedule explorer.

For a scripted workload the explorer first runs a *profiling* pass that
counts every durable write (the write boundaries), then — for each
chosen boundary ``k`` — rebuilds a pristine database, arms the
:class:`~repro.testkit.faults.FaultyDevice` proxies to crash in place
of write ``k``, runs the workload until the crash fires, discards
volatile state, reopens via ``Database.open`` + ``InversionFS.attach``,
and checks the recovered mount three ways:

1. **differential oracle** — the visible state must equal the
   :class:`~repro.testkit.oracle.ModelFS` built from exactly the
   transactions whose commit records became durable (with torn appends
   enabled, the one in-flight transaction is allowed to land on either
   side of the boundary — its record may have survived the tear);
2. **storage invariants** — ``core.checker.ConsistencyChecker`` must
   report zero corruptions;
3. **recovery accounting** — ``TransactionManager.recovery_report``
   must load without error (its numbers are recorded per crash point).

Everything is seeded and simulated-clock-driven; the same (workload,
seed, k) always reproduces the same crash byte-for-byte.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.checker import ConsistencyChecker
from repro.core.filesystem import InversionFS
from repro.db.database import Database
from repro.errors import ReproError, SimulatedCrashError
from repro.testkit.faults import CrashController, FaultPlan, FaultyDevice
from repro.testkit.oracle import (ModelFS, apply_client_op, apply_fs_op,
                                  harvest_state)
from repro.testkit.workload import MigrateStep, TxStep, VacuumStep, Workload


class WorkloadRunner:
    """Executes a workload's steps against one mounted fs, keeping the
    oracle in lock-step: a step's ops reach the model only once its
    commit returned (i.e. its commit record was performed)."""

    def __init__(self, db: Database, fs: InversionFS, workload: Workload) -> None:
        self.db = db
        self.fs = fs
        self.workload = workload
        self.oracle = ModelFS()
        #: ops of the transaction in flight when a crash fired, or None
        #: when the crash hit outside any visible-state-changing commit.
        self.pending: tuple | None = None
        #: (xid, ops) of transactions committed in memory whose group-
        #: commit records are still queued (not durable), in commit
        #: order.  A crash may lose any *suffix* of this list; the
        #: explorer therefore accepts the oracle base plus every prefix.
        self.floating: list[tuple[int, tuple]] = []

    def run(self) -> None:
        for step in self.workload.steps:
            self.pending = None
            self._drain_floating()
            if isinstance(step, TxStep):
                self._run_tx(step)
            elif isinstance(step, VacuumStep):
                self._run_vacuum(step)
            elif isinstance(step, MigrateStep):
                self._run_migrate(step)
            else:
                raise TypeError(f"unknown step {step!r}")
        self.pending = None
        self._drain_floating()

    def _drain_floating(self) -> None:
        """Fold floating commits whose records have since been durably
        flushed (group-commit batches force at later begins/commits)
        into the oracle base, keeping the set of crash-ambiguous
        transactions as small as the device state allows."""
        still_pending = set(self.db.tm.pending_commit_xids())
        while self.floating and self.floating[0][0] not in still_pending:
            _, ops = self.floating.pop(0)
            self.oracle.apply_many(ops)

    def completed_state(self) -> dict:
        """The expected visible state of a run that finished without a
        crash: the durable oracle base plus every floating commit (they
        are visible in memory even before their records are forced)."""
        model = self.oracle
        for _, ops in self.floating:
            model = model.preview(ops)
        return model.state()

    def _run_tx(self, step: TxStep) -> None:
        tx = self.fs.begin()
        if not step.abort:
            # From the first op until commit returns, a crash leaves
            # this transaction's fate to the recovered status file.
            self.pending = step.ops
        for op in step.ops:
            apply_fs_op(self.fs, tx, op)
        if step.abort:
            self.fs.abort(tx)
        else:
            self.fs.commit(tx)
            self.pending = None
            self._drain_floating()
            if tx.xid in set(self.db.tm.pending_commit_xids()):
                # Group commit queued the record: committed in memory,
                # not yet durable — a crash may still lose it.
                self.floating.append((tx.xid, step.ops))
            else:
                self.oracle.apply_many(step.ops)

    def _run_vacuum(self, step: VacuumStep) -> None:
        table = step.table or self.fs.chunk_table_of(step.path)
        self.db.vacuum(table, keep_history=step.keep_history)

    def _run_migrate(self, step: MigrateStep) -> None:
        from repro.core.migration import MigrationEngine
        engine = MigrationEngine(self.fs)
        if all(r.name != step.rule_name for r in engine.rules):
            engine.add_rule(step.rule_name, step.qualification, step.target)
        tx = self.db.begin()
        try:
            engine.run(tx)
        except BaseException:
            self.db.abort(tx)
            raise
        self.db.commit(tx)


@dataclass
class CrashPointResult:
    """Verdict for one crash point."""

    point: int
    completed: bool          # the run finished before the crash fired
    state_ok: bool
    checker_clean: bool
    ambiguous: bool          # torn tail let the in-flight tx commit
    recovery: dict = field(default_factory=dict)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.state_ok and self.checker_clean


@dataclass
class ExplorationReport:
    workload: str
    total_writes: int
    results: list = field(default_factory=list)

    @property
    def points_tested(self) -> list[int]:
        return [r.point for r in self.results if not r.completed]

    @property
    def violations(self) -> list:
        return [r for r in self.results if not r.ok]

    def summary(self) -> str:
        return (f"workload={self.workload} boundaries={self.total_writes} "
                f"tested={len(self.points_tested)} "
                f"violations={len(self.violations)}")


class CrashScheduleExplorer:
    """Enumerates a workload's write boundaries and crash-tests each."""

    def __init__(self, base_dir: str, workload: Workload,
                 torn_append: bool = False, seed: int = 0,
                 cached: bool = False) -> None:
        self.base_dir = str(base_dir)
        self.workload = workload
        self.torn_append = torn_append
        self.seed = seed
        #: run concurrent workloads with client caches enabled —
        #: crash points and oracle outcomes must be identical either
        #: way (lease bookkeeping does no device I/O).
        self.cached = cached

    # -- plumbing --------------------------------------------------------

    def _build(self, run_dir: str) -> tuple[Database, InversionFS]:
        db = Database.create(run_dir)
        fs = InversionFS.mkfs(db)
        self.workload.setup(db, fs)
        return db, fs

    def _arm(self, db: Database, crash_after: int | None) -> CrashController:
        plan = FaultPlan(crash_after=crash_after,
                         torn_append=self.torn_append, seed=self.seed)
        controller = CrashController(plan)
        db.wrap_devices(lambda dev: FaultyDevice(dev, controller))
        return controller

    def _make_runner(self, db: Database, fs: InversionFS):
        """One runner per run: the single-session lock-step runner, or —
        when the workload declares per-client ``sessions`` — the
        scheduler-driven concurrent runner (same interface)."""
        if self.workload.sessions:
            from repro.testkit.concurrent import ConcurrentWorkloadRunner
            return ConcurrentWorkloadRunner(db, fs, self.workload,
                                            cached=self.cached)
        return WorkloadRunner(db, fs, self.workload)

    # -- passes ----------------------------------------------------------

    def count_write_boundaries(self) -> int:
        """Profiling pass: run to completion, return the number of
        durable writes — each index is one crash point.  Also sanity-
        checks that the completed run matches the oracle."""
        run_dir = os.path.join(self.base_dir, "profile")
        db, fs = self._build(run_dir)
        controller = self._arm(db, crash_after=None)
        runner = self._make_runner(db, fs)
        runner.run()
        controller.disarm()
        final = harvest_state(fs)
        expected = runner.completed_state()
        if final != expected:
            raise AssertionError(
                f"workload {self.workload.name!r} diverges from the oracle "
                f"even without a crash: {_diff(final, expected)}")
        db.close()
        return controller.writes

    def run_crash_point(self, point: int) -> CrashPointResult:
        run_dir = os.path.join(self.base_dir, f"run{point:05d}")
        db, fs = self._build(run_dir)
        controller = self._arm(db, crash_after=point)
        runner = self._make_runner(db, fs)
        try:
            runner.run()
        except SimulatedCrashError:
            pass
        controller.disarm()
        if not controller.crashed:
            db.close()
            return CrashPointResult(point, completed=True, state_ok=True,
                                    checker_clean=True, ambiguous=False)
        db.simulate_crash()

        try:
            recovered_db = Database.open(run_dir)
        except Exception as exc:
            # Recovery itself must never fail — "no special log
            # processing is required at crash recovery time".
            return CrashPointResult(point, completed=False, state_ok=False,
                                    checker_clean=False, ambiguous=False,
                                    detail=f"reopen failed: {exc!r}")
        try:
            try:
                recovered_fs = InversionFS.attach(recovered_db)
                recovered = harvest_state(recovered_fs)
            except ReproError as exc:
                # The recovered store is so damaged it cannot even be
                # read back — the strongest possible violation verdict.
                return CrashPointResult(point, completed=False, state_ok=False,
                                        checker_clean=False, ambiguous=False,
                                        detail=f"harvest raised: {exc!r}")
            # Allowed recovered states: the durable oracle base, plus —
            # because group-commit batches are forced as one append and
            # a crash (or tear) can cut that append anywhere — every
            # prefix of the floating commit list.
            model = runner.oracle
            allowed = [model.state()]
            for _, ops in runner.floating:
                model = model.preview(ops)
                allowed.append(model.state())
            if self.torn_append and runner.pending is not None:
                # The tear may have left a parseable commit record: the
                # in-flight transaction lands on either side.
                allowed.append(model.preview(runner.pending).state())
            state_ok = recovered in allowed
            ambiguous = state_ok and len(allowed) > 1 and recovered != allowed[0]
            try:
                check = ConsistencyChecker(recovered_fs).check_all()
            except ReproError as exc:
                return CrashPointResult(point, completed=False,
                                        state_ok=state_ok, checker_clean=False,
                                        ambiguous=ambiguous,
                                        detail=f"checker raised: {exc!r}")
            recovery = recovered_db.tm.recovery_report()
            detail = ""
            if not state_ok:
                detail = _diff(recovered, allowed[0])
            elif not check.clean:
                first = check.corruptions[0]
                detail = f"{len(check.corruptions)} corruptions; first: {first}"
            return CrashPointResult(point, completed=False, state_ok=state_ok,
                                    checker_clean=check.clean,
                                    ambiguous=ambiguous, recovery=recovery,
                                    detail=detail)
        finally:
            recovered_db.close()

    def explore(self, max_points: int | None = None) -> ExplorationReport:
        """Crash-test the workload at every write boundary (or, with
        ``max_points``, an evenly spaced deterministic sample that
        always includes the first and last boundaries)."""
        total = self.count_write_boundaries()
        report = ExplorationReport(self.workload.name, total)
        for point in select_points(total, max_points):
            report.results.append(self.run_crash_point(point))
        return report


class ShardedWorkloadRunner:
    """Executes a sharded workload's steps through one
    :class:`~repro.shard.client.ShardedInversionClient`, each
    :class:`~repro.testkit.workload.TxStep` as one explicit cluster
    transaction — so a step that touches two subtrees commits through
    2PC, and the in-flight step's fate at a crash is decided by the
    prepare records and the coordinator's decision log.

    Sharded workloads run without a group-commit window (2PC forces
    bypass the batching queue anyway), so the oracle is strictly
    two-valued at every boundary: the durable base, or the base plus
    the one in-flight group."""

    def __init__(self, cluster, workload: Workload,
                 cached: bool = False) -> None:
        self.cluster = cluster
        self.workload = workload
        self.client = (cluster.client(cache_paths=64, cache_chunks=32)
                       if cached else cluster.client())
        # setup ops committed before the run was armed: part of the base.
        self.oracle = ModelFS()
        self.oracle.apply_many(workload.setup_ops)
        #: ops of the group in flight when a crash fired, or None.
        self.pending: tuple | None = None

    def run(self) -> None:
        for step in self.workload.steps:
            if not isinstance(step, TxStep):
                raise TypeError(
                    f"sharded workloads take TxStep only, got {step!r}")
            self.pending = None
            self._run_tx(step)
        self.pending = None

    def _run_tx(self, step: TxStep) -> None:
        client = self.client
        client.p_begin()
        if not step.abort:
            self.pending = step.ops
        for op in step.ops:
            apply_client_op(client, op)
        if step.abort:
            client.p_abort()
        else:
            client.p_commit()
            self.pending = None
            self.oracle.apply_many(step.ops)

    def completed_state(self) -> dict:
        return self.oracle.state()


def harvest_cluster(cluster) -> dict[str, bytes | None]:
    """The committed visible state of a whole cluster, in the model's
    shape.  Each shard's root lists only the top-level entries it owns,
    so the union over shards is disjoint by construction."""
    state: dict[str, bytes | None] = {}
    for fs in cluster.fss:
        state.update(harvest_state(fs))
    return state


class ShardedCrashExplorer:
    """The crash-schedule explorer, cluster edition.

    One :class:`~repro.testkit.faults.CrashController` is shared by
    every device proxy on every shard, so the cluster's durable writes
    form a single global ordering — "crash at write #k" is a
    cluster-wide coordinate that lands, across the sweep, on every
    prepare force, every coordinator decision force, and every
    phase-two commit record, on coordinator and participant shards
    alike.  After each crash the cluster reopens through
    :meth:`~repro.shard.cluster.ShardedCluster.open` (which resolves
    in-doubt prepared transactions against the decision log) and must
    match the two-valued oracle: the in-flight group committed
    everywhere or nowhere.  Half a cross-shard rename — either name
    missing from both shards, or present on both — is a violation."""

    def __init__(self, base_dir: str, workload: Workload,
                 torn_append: bool = False, seed: int = 0,
                 cached: bool = False) -> None:
        if not workload.shards:
            raise ValueError(
                f"workload {workload.name!r} is not sharded "
                f"(shards={workload.shards})")
        self.base_dir = str(base_dir)
        self.workload = workload
        self.torn_append = torn_append
        self.seed = seed
        #: drive the workload through a caching cluster client — leases
        #: keep it coherent and the bookkeeping does no device I/O, so
        #: the global write ordering is identical either way.
        self.cached = cached

    # -- plumbing --------------------------------------------------------

    def _build(self, run_dir: str):
        from repro.shard.cluster import ShardedCluster
        cluster = ShardedCluster.create(
            run_dir, self.workload.shards, policy="subtree",
            assignments=dict(self.workload.assignments))
        client = cluster.client()
        for op in self.workload.setup_ops:
            # auto-commit, one op per transaction, before arming.
            apply_client_op(client, op)
        client.close()
        return cluster

    def _arm(self, cluster, crash_after: int | None) -> CrashController:
        plan = FaultPlan(crash_after=crash_after,
                         torn_append=self.torn_append, seed=self.seed)
        controller = CrashController(plan)
        cluster.wrap_devices(lambda dev: FaultyDevice(dev, controller))
        return controller

    # -- passes ----------------------------------------------------------

    def count_write_boundaries(self) -> int:
        run_dir = os.path.join(self.base_dir, "profile")
        cluster = self._build(run_dir)
        controller = self._arm(cluster, crash_after=None)
        runner = ShardedWorkloadRunner(cluster, self.workload,
                                       cached=self.cached)
        runner.run()
        controller.disarm()
        final = harvest_cluster(cluster)
        expected = runner.completed_state()
        if final != expected:
            raise AssertionError(
                f"sharded workload {self.workload.name!r} diverges from "
                f"the oracle even without a crash: {_diff(final, expected)}")
        cluster.close()
        return controller.writes

    def run_crash_point(self, point: int) -> CrashPointResult:
        from repro.shard.cluster import ShardedCluster
        run_dir = os.path.join(self.base_dir, f"run{point:05d}")
        cluster = self._build(run_dir)
        controller = self._arm(cluster, crash_after=point)
        runner = ShardedWorkloadRunner(cluster, self.workload,
                                       cached=self.cached)
        try:
            runner.run()
        except SimulatedCrashError:
            pass
        controller.disarm()
        if not controller.crashed:
            cluster.close()
            return CrashPointResult(point, completed=True, state_ok=True,
                                    checker_clean=True, ambiguous=False)
        cluster.simulate_crash()

        try:
            recovered = ShardedCluster.open(run_dir)
        except Exception as exc:
            return CrashPointResult(point, completed=False, state_ok=False,
                                    checker_clean=False, ambiguous=False,
                                    detail=f"reopen failed: {exc!r}")
        try:
            try:
                state = harvest_cluster(recovered)
            except ReproError as exc:
                return CrashPointResult(point, completed=False,
                                        state_ok=False, checker_clean=False,
                                        ambiguous=False,
                                        detail=f"harvest raised: {exc!r}")
            # The two allowed worlds.  Unlike the single-server torn
            # case, *both* sides are reachable without tears: a crash
            # between the last prepare and the decision force aborts
            # the group, one between the decision force and the last
            # phase-two record commits it through in-doubt recovery.
            allowed = [runner.oracle.state()]
            if runner.pending is not None:
                allowed.append(runner.oracle.preview(runner.pending).state())
            state_ok = state in allowed
            ambiguous = state_ok and len(allowed) > 1 and state != allowed[0]
            corruptions = 0
            checker_detail = ""
            try:
                for shard, fs in enumerate(recovered.fss):
                    check = ConsistencyChecker(fs).check_all()
                    if not check.clean:
                        corruptions += len(check.corruptions)
                        if not checker_detail:
                            checker_detail = (f"shard{shard}: "
                                              f"{check.corruptions[0]}")
            except ReproError as exc:
                return CrashPointResult(point, completed=False,
                                        state_ok=state_ok,
                                        checker_clean=False,
                                        ambiguous=ambiguous,
                                        detail=f"checker raised: {exc!r}")
            recovery = {
                "shards": [db.tm.recovery_report() for db in recovered.dbs],
                "in_doubt_commits": recovered.stats.in_doubt_commits,
                "in_doubt_aborts": recovered.stats.in_doubt_aborts,
            }
            detail = ""
            if not state_ok:
                detail = _diff(state, allowed[0])
            elif corruptions:
                detail = f"{corruptions} corruptions; first: {checker_detail}"
            return CrashPointResult(point, completed=False, state_ok=state_ok,
                                    checker_clean=corruptions == 0,
                                    ambiguous=ambiguous, recovery=recovery,
                                    detail=detail)
        finally:
            recovered.close()

    def explore(self, max_points: int | None = None) -> ExplorationReport:
        total = self.count_write_boundaries()
        report = ExplorationReport(self.workload.name, total)
        for point in select_points(total, max_points):
            report.results.append(self.run_crash_point(point))
        return report


def select_points(total: int, max_points: int | None) -> list[int]:
    """0-based write indices to crash at: all of them, or an evenly
    spaced sample of ``max_points`` including both endpoints."""
    if total <= 0:
        return []
    if max_points is None or max_points >= total:
        return list(range(total))
    if max_points == 1:
        return [0]
    step = (total - 1) / (max_points - 1)
    return sorted({round(i * step) for i in range(max_points)})


def _diff(got: dict, want: dict) -> str:
    missing = sorted(set(want) - set(got))
    extra = sorted(set(got) - set(want))
    changed = sorted(k for k in set(got) & set(want) if got[k] != want[k])
    parts = []
    if missing:
        parts.append(f"missing={missing[:5]}")
    if extra:
        parts.append(f"extra={extra[:5]}")
    if changed:
        parts.append(f"changed={changed[:5]}")
    return " ".join(parts) or "states differ"
