"""Failover crash exploration: kill the primary, promote a replica.

The claim under test: **failover is crash recovery replayed on another
machine**.  The :class:`~repro.replica.feed.FeedTapDevice` records only
writes that reached the media (the fault-injecting
:class:`~repro.testkit.faults.FaultyDevice` wraps *outside* it, so a
crash-suppressed write never enters the feed), which means the feed at
the instant of a primary crash is exactly the primary's durable state
— torn status-file tail included.  A replica that drains that feed and
promotes must therefore recover to the same state a local restart of
the crashed primary would, and the whole single-server oracle argument
(durable base + floating group-commit prefixes + torn-tail ambiguity)
carries over unchanged.

For each sampled write boundary ``k`` the explorer rebuilds a pristine
primary, seeds ``nreplicas`` replicas, arms the fault proxies, runs the
workload with periodic sync rounds interleaved, crashes the primary in
place of write ``k``, then:

1. promotes the most caught-up replica (final feed drain + promote);
2. checks the promoted state against the oracle's allowed states;
3. reopens the dead primary's media locally and requires the promoted
   state to be **identical** — zero lost committed transactions, since
   local recovery preserves every durable commit by construction;
4. re-points the surviving replicas at the new primary's feed, syncs
   them, and requires them to match too (no re-seed: the promoted feed
   was seeded with the entries the victim had applied);
5. runs :class:`~repro.core.checker.ConsistencyChecker` on the
   promoted mount.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.checker import ConsistencyChecker
from repro.core.filesystem import InversionFS
from repro.db.database import Database
from repro.errors import ReproError, SimulatedCrashError
from repro.replica.feed import PrimaryFeed, ReplStats
from repro.replica.server import ReplicaServer
from repro.testkit.explorer import (CrashPointResult, ExplorationReport,
                                    WorkloadRunner, _diff, select_points)
from repro.testkit.faults import CrashController, FaultPlan, FaultyDevice
from repro.testkit.oracle import harvest_state
from repro.testkit.workload import TxStep, Workload


class SyncingWorkloadRunner(WorkloadRunner):
    """The lock-step runner, with replica sync rounds interleaved every
    ``sync_every`` committed transaction steps — so crash boundaries
    land while replicas are at varying degrees of staleness."""

    def __init__(self, db, fs, workload: Workload,
                 replicas: list[ReplicaServer], sync_every: int) -> None:
        super().__init__(db, fs, workload)
        self.replicas = replicas
        self.sync_every = sync_every
        self._steps_run = 0

    def _run_tx(self, step: TxStep) -> None:
        super()._run_tx(step)
        self._steps_run += 1
        if self.sync_every and self._steps_run % self.sync_every == 0:
            for replica in self.replicas:
                replica.sync()


@dataclass
class FailoverPointResult(CrashPointResult):
    """Per-boundary verdict, extended with the failover-only checks."""

    #: promoted state == locally recovered primary state (the zero-
    #: lost-committed-transactions check).
    matches_local_recovery: bool = True
    #: every surviving follower resumed from its cursor and converged.
    followers_converged: bool = True
    #: feed entries the victim drained during promotion.
    drained_entries: int = 0

    @property
    def ok(self) -> bool:  # type: ignore[override]
        return (self.state_ok and self.checker_clean
                and self.matches_local_recovery
                and self.followers_converged)


@dataclass
class FailoverReport(ExplorationReport):
    nreplicas: int = 0
    results: list = field(default_factory=list)

    def summary(self) -> str:
        return (f"workload={self.workload} replicas={self.nreplicas} "
                f"boundaries={self.total_writes} "
                f"tested={len(self.points_tested)} "
                f"violations={len(self.violations)}")


class FailoverCrashExplorer:
    """Crash the primary at every sampled write boundary; promote."""

    def __init__(self, base_dir: str, workload: Workload,
                 nreplicas: int = 2, sync_every: int = 3,
                 torn_append: bool = False, seed: int = 0) -> None:
        self.base_dir = str(base_dir)
        self.workload = workload
        self.nreplicas = nreplicas
        self.sync_every = sync_every
        self.torn_append = torn_append
        self.seed = seed

    # -- plumbing --------------------------------------------------------

    def _build(self, run_dir: str):
        db = Database.create(os.path.join(run_dir, "primary"))
        fs = InversionFS.mkfs(db)
        self.workload.setup(db, fs)
        feed = PrimaryFeed.attach(db, stats=ReplStats())
        replicas = [
            ReplicaServer.seed(feed, os.path.join(run_dir, f"replica{i}"),
                               f"replica{i}")
            for i in range(self.nreplicas)
        ]
        return db, fs, feed, replicas

    def _arm(self, db: Database, crash_after: int | None) -> CrashController:
        # The fault proxy stacks OUTSIDE the feed tap (wrap_devices
        # interposes over the current top), so a suppressed write never
        # reaches the feed — the feed is exactly the media.
        plan = FaultPlan(crash_after=crash_after,
                         torn_append=self.torn_append, seed=self.seed)
        controller = CrashController(plan)
        db.wrap_devices(lambda dev: FaultyDevice(dev, controller))
        return controller

    # -- passes ----------------------------------------------------------

    def count_write_boundaries(self) -> int:
        """Profiling pass: run to completion, sync everyone, and check
        that primary and every replica agree with the oracle."""
        run_dir = os.path.join(self.base_dir, "profile")
        db, fs, feed, replicas = self._build(run_dir)
        controller = self._arm(db, crash_after=None)
        runner = SyncingWorkloadRunner(db, fs, self.workload, replicas,
                                       self.sync_every)
        runner.run()
        controller.disarm()
        db.tm.flush_commits()
        expected = runner.completed_state()
        final = harvest_state(fs)
        if final != expected:
            raise AssertionError(
                f"primary diverges from the oracle without a crash: "
                f"{_diff(final, expected)}")
        for replica in replicas:
            replica.sync()
            got = harvest_state(replica.fs)
            if got != expected:
                raise AssertionError(
                    f"caught-up {replica.replica_id} diverges from the "
                    f"oracle: {_diff(got, expected)}")
            replica.close()
        db.close()
        return controller.writes

    def run_crash_point(self, point: int) -> FailoverPointResult:
        run_dir = os.path.join(self.base_dir, f"run{point:05d}")
        db, fs, feed, replicas = self._build(run_dir)
        controller = self._arm(db, crash_after=point)
        runner = SyncingWorkloadRunner(db, fs, self.workload, replicas,
                                       self.sync_every)
        try:
            runner.run()
        except SimulatedCrashError:
            pass
        controller.disarm()
        if not controller.crashed:
            db.close()
            for replica in replicas:
                replica.close()
            return FailoverPointResult(point, completed=True, state_ok=True,
                                       checker_clean=True, ambiguous=False)
        db.simulate_crash()

        # -- promote the most caught-up replica --------------------------
        victim = max(replicas, key=lambda r: r.cursor)
        before = victim.cursor
        new_feed = victim.promote()
        drained = victim.cursor - before
        try:
            promoted_state = harvest_state(victim.fs)
        except ReproError as exc:
            return FailoverPointResult(
                point, completed=False, state_ok=False, checker_clean=False,
                ambiguous=False, matches_local_recovery=False,
                followers_converged=False, drained_entries=drained,
                detail=f"promoted harvest raised: {exc!r}")

        # -- the oracle's allowed states ---------------------------------
        model = runner.oracle
        allowed = [model.state()]
        for _, ops in runner.floating:
            model = model.preview(ops)
            allowed.append(model.state())
        if self.torn_append and runner.pending is not None:
            allowed.append(model.preview(runner.pending).state())
        state_ok = promoted_state in allowed
        ambiguous = (state_ok and len(allowed) > 1
                     and promoted_state != allowed[0])

        # -- zero lost committed transactions ----------------------------
        # Local recovery of the dead primary's media is the ground
        # truth: it preserves every durable commit by construction, so
        # promoted == recovered proves nothing durable was lost.
        detail = ""
        matches_local = True
        try:
            recovered_db = Database.open(os.path.join(run_dir, "primary"))
            recovered_fs = InversionFS.attach(recovered_db)
            local_state = harvest_state(recovered_fs)
            matches_local = promoted_state == local_state
            if not matches_local:
                detail = ("promoted != local recovery: "
                          + _diff(promoted_state, local_state))
            recovered_db.close()
        except Exception as exc:
            matches_local = False
            detail = f"local recovery failed: {exc!r}"

        # -- surviving followers resume from their cursors ---------------
        followers_ok = True
        for follower in replicas:
            if follower is victim:
                continue
            try:
                follower.rebind_feed(new_feed)
                follower.sync()
                if harvest_state(follower.fs) != promoted_state:
                    followers_ok = False
                    if not detail:
                        detail = (f"{follower.replica_id} diverged after "
                                  f"failover")
            except Exception as exc:
                followers_ok = False
                if not detail:
                    detail = (f"{follower.replica_id} resume failed: "
                              f"{exc!r}")

        # -- storage invariants ------------------------------------------
        try:
            check = ConsistencyChecker(victim.fs).check_all()
            checker_clean = check.clean
            if state_ok and matches_local and followers_ok and not checker_clean:
                detail = (f"{len(check.corruptions)} corruptions; "
                          f"first: {check.corruptions[0]}")
        except ReproError as exc:
            checker_clean = False
            detail = detail or f"checker raised: {exc!r}"

        recovery = victim.db.tm.recovery_report()
        if not state_ok and not detail:
            detail = _diff(promoted_state, allowed[0])
        result = FailoverPointResult(
            point, completed=False, state_ok=state_ok,
            checker_clean=checker_clean, ambiguous=ambiguous,
            recovery=recovery, matches_local_recovery=matches_local,
            followers_converged=followers_ok, drained_entries=drained,
            detail=detail)
        for replica in replicas:
            replica.close()
        return result

    def explore(self, max_points: int | None = None) -> FailoverReport:
        total = self.count_write_boundaries()
        report = FailoverReport(self.workload.name, total,
                                nreplicas=self.nreplicas)
        for point in select_points(total, max_points):
            report.results.append(self.run_crash_point(point))
        return report
