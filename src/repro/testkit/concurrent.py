"""Concurrent workloads for the crash-schedule explorer.

:class:`ConcurrentWorkloadRunner` mirrors the single-session
:class:`~repro.testkit.explorer.WorkloadRunner` interface (``oracle``,
``pending``, ``floating``, ``run()``, ``completed_state()``) but drives
a :class:`~repro.testkit.workload.Workload` whose ``sessions`` field
holds one step list *per client* through the deterministic
multi-session scheduler (:mod:`repro.sched`).  Each
:class:`~repro.testkit.workload.TxStep` becomes a scheduler ``Txn`` of
``Apply`` items running :func:`~repro.testkit.oracle.apply_fs_op`, so
the crash explorer's model ops flow through real interleaved
transactions — lock parks, deadlock-victim retries and group-commit
batches included.

The oracle stays correct under interleaving because two-phase locking
makes the committed transactions serializable *in commit order*: the
scheduler's ``commit_hook`` fires the instant each commit dispatch
returns, and the runner applies that step's ops to the model right
there (or holds them in the floating list while the commit record sits
in the group-commit queue).  A crash may lose any suffix of the
floating list — exactly the acceptance rule the explorer already
applies to single-session group-commit runs.

Determinism: the scheduler is seeded from ``workload.sched_seed`` and
everything advances on the simulated clock, so the profiling pass and
every crash-point rebuild replay byte-identical write sequences —
"crash at write #k" stays a meaningful coordinate even with eight
clients in flight.
"""

from __future__ import annotations

from repro.core.server import InversionServer
from repro.sched import Apply, MultiUserScheduler, Txn
from repro.testkit.oracle import ModelFS, apply_fs_op
from repro.testkit.workload import TxStep, Workload


class ConcurrentWorkloadRunner:
    """Executes a workload's per-session step lists through the
    multi-session scheduler, keeping the differential oracle in
    lock-step at commit order."""

    def __init__(self, db, fs, workload: Workload,
                 cached: bool = False) -> None:
        self.db = db
        self.fs = fs
        self.workload = workload
        #: run the sessions with lease-coherent client caches attached
        #: (the cache must be invisible: lease bookkeeping is pure dict
        #: work, so write boundaries and oracle outcomes are unchanged).
        self.cached = cached
        self.oracle = ModelFS()
        self.oracle.apply_many(workload.setup_ops)
        #: kept for interface parity with WorkloadRunner.  Concurrent
        #: runs are explored without torn appends, where an in-flight
        #: transaction can never land on the committed side, so there
        #: is never a pending candidate.
        self.pending: tuple | None = None
        #: (xid, ops) committed in memory, commit order, records still
        #: queued by group commit — a crash may lose any suffix.
        self.floating: list[tuple[int, tuple]] = []

    def _program(self, steps) -> list[Txn]:
        program = []
        for step in steps:
            if not isinstance(step, TxStep):
                raise TypeError(
                    f"concurrent workloads take TxStep only, got {step!r}")
            items = [Apply(op[0],
                           lambda fs, tx, op=op: apply_fs_op(fs, tx, op))
                     for op in step.ops]
            program.append(Txn(items, abort=step.abort, tag=step))
        return program

    def _on_commit(self, session, step: TxStep, xid: int) -> None:
        self._drain_floating()
        if xid in set(self.db.tm.pending_commit_xids()):
            self.floating.append((xid, step.ops))
        else:
            self.oracle.apply_many(step.ops)

    def _drain_floating(self) -> None:
        still_pending = set(self.db.tm.pending_commit_xids())
        while self.floating and self.floating[0][0] not in still_pending:
            _, ops = self.floating.pop(0)
            self.oracle.apply_many(ops)

    def run(self) -> None:
        server = InversionServer(self.fs)
        factory = None
        if self.cached:
            from repro.cache import session_cache_factory
            factory = session_cache_factory()
        sched = MultiUserScheduler(server, seed=self.workload.sched_seed,
                                   cache_factory=factory)
        sched.commit_hook = self._on_commit
        try:
            for i, steps in enumerate(self.workload.sessions):
                sched.add_session(self._program(steps), name=f"s{i}")
            sched.run(strict=True)
        finally:
            sched.close()
        self._drain_floating()

    def completed_state(self) -> dict:
        """Expected visible state of a crash-free run: the durable base
        plus every floating commit (visible in memory already)."""
        model = self.oracle
        for _, ops in self.floating:
            model = model.preview(ops)
        return model.state()
