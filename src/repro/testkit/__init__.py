"""Deterministic crash/fault-injection testkit.

The paper's headline claim is that every file-system service — data,
metadata, naming — is transaction-protected by the no-overwrite storage
manager, with "essentially instantaneous" crash recovery.  This package
turns that claim into a checkable property:

- :mod:`repro.testkit.faults` interposes a :class:`FaultyDevice` proxy
  between the buffer cache / transaction manager and the real device
  managers, able to inject torn status-file appends, transient and
  permanent I/O errors, and a counted "crash in place of write #N"
  trigger.
- :mod:`repro.testkit.oracle` is a dict-based model file system that
  applies only committed operations — the differential oracle a
  recovered database is compared against.
- :mod:`repro.testkit.workload` holds deterministic scripted workloads
  (create/write/unlink/rename/vacuum/migrate) expressed as data.
- :mod:`repro.testkit.explorer` enumerates every durable-write boundary
  of a workload, crashes the system at each one, reopens it via
  ``Database.open`` + ``InversionFS.attach``, and checks the recovered
  state against the oracle and the ``core.checker`` invariants.

Everything is seeded and driven by the simulated clock, so CI results
are bit-for-bit reproducible.
"""

from repro.testkit.explorer import (
    CrashPointResult,
    CrashScheduleExplorer,
    ExplorationReport,
    WorkloadRunner,
)
from repro.testkit.faults import CrashController, FaultPlan, FaultyDevice
from repro.testkit.oracle import ModelFS, harvest_state
from repro.testkit.workload import (
    MigrateStep,
    TxStep,
    VacuumStep,
    Workload,
    commit_workload,
    migration_workload,
    payload,
    vacuum_workload,
)

__all__ = [
    "CrashController",
    "CrashPointResult",
    "CrashScheduleExplorer",
    "ExplorationReport",
    "FaultPlan",
    "FaultyDevice",
    "MigrateStep",
    "ModelFS",
    "TxStep",
    "VacuumStep",
    "Workload",
    "WorkloadRunner",
    "commit_workload",
    "harvest_state",
    "migration_workload",
    "payload",
    "vacuum_workload",
]
