"""Scripted workloads for the crash-schedule explorer.

A workload is data, not code: a list of steps, each either a
transaction (:class:`TxStep` — a tuple of model ops committed or
aborted together), a vacuum pass (:class:`VacuumStep`), or a
rule-driven migration (:class:`MigrateStep`).  Payload bytes are
derived from SHA-256, so two runs of the same workload issue an
identical sequence of durable writes — which is what makes "crash at
write #k" a meaningful, replayable coordinate.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


def payload(seed: int, tag: str, size: int) -> bytes:
    """``size`` deterministic bytes, independent of PYTHONHASHSEED."""
    out = bytearray()
    counter = 0
    while len(out) < size:
        out += hashlib.sha256(f"{seed}:{tag}:{counter}".encode()).digest()
        counter += 1
    return bytes(out[:size])


@dataclass(frozen=True)
class TxStep:
    """One transaction: apply ``ops`` then commit (or abort)."""

    ops: tuple
    abort: bool = False


@dataclass(frozen=True)
class VacuumStep:
    """Vacuum one table: a file's chunk table (by path) or a named
    system table."""

    path: str | None = None
    table: str | None = None
    keep_history: bool = True


@dataclass(frozen=True)
class MigrateStep:
    """Declare a migration rule (if new) and run the engine."""

    rule_name: str
    qualification: str
    target: str


@dataclass
class Workload:
    name: str
    steps: list
    #: extra devices registered before the run is armed, as
    #: (name, kind) pairs understood by ``Database.add_device``.
    devices: tuple = ()
    #: group-commit window (simulated seconds) applied to the database
    #: under test; 0.0 keeps the paper's one-force-per-commit behaviour.
    group_commit_window: float = 0.0
    #: per-client step lists (TxStep only).  Non-empty makes this a
    #: *concurrent* workload: ``steps`` is ignored and the explorer runs
    #: the sessions through the deterministic multi-session scheduler
    #: (:class:`~repro.testkit.concurrent.ConcurrentWorkloadRunner`).
    sessions: tuple = ()
    #: seed for the scheduler's interleaving lottery.
    sched_seed: int = 0
    #: shard count; non-zero makes this a *sharded* workload, run by
    #: :class:`~repro.testkit.explorer.ShardedCrashExplorer` against a
    #: cluster instead of one server.
    shards: int = 0
    #: subtree placement for sharded workloads, as (component, shard)
    #: pairs — explicit so the cross-shard steps are cross-shard by
    #: construction, not by hash luck.
    assignments: tuple = ()
    #: model ops committed once during :meth:`setup`, before the run is
    #: armed for crashes — shared fixtures concurrent sessions contend
    #: on (e.g. a pre-created hot file, so no two sessions race to
    #: create the same path, which 2PL serializes into a clean
    #: FileExistsError for the loser rather than a retryable conflict).
    setup_ops: tuple = ()

    def setup(self, db, fs) -> None:
        for devname, kind in self.devices:
            db.add_device(devname, kind)
        if self.setup_ops:
            from repro.testkit.oracle import apply_fs_op
            tx = fs.begin()
            for op in self.setup_ops:
                apply_fs_op(fs, tx, op)
            fs.commit(tx)
        if self.group_commit_window:
            db.tm.group_commit_window = self.group_commit_window


def commit_workload(seed: int = 0) -> Workload:
    """Naming + data + metadata churn across five transactions,
    including an abort, an overwrite that shrinks, a rename, and a
    directory removal."""
    p = lambda tag, size: payload(seed, tag, size)  # noqa: E731
    return Workload("commit", [
        TxStep((("mkdir", "/docs"),
                ("write", "/docs/a", p("a0", 3000)),
                ("write", "/b", p("b0", 500)))),
        TxStep((("write", "/docs/a", p("a1", 1200)),   # shorter: tail survives
                ("mkdir", "/tmp"),
                ("write", "/tmp/t", p("t0", 100)))),
        TxStep((("write", "/never", p("n0", 9000)),), abort=True),
        TxStep((("unlink", "/b"),
                ("rename", "/tmp/t", "/docs/t"))),
        TxStep((("rmdir", "/tmp"),
                ("write", "/docs/d", p("d0", 17000)))),  # 3 chunks
    ])


def vacuum_workload(seed: int = 0) -> Workload:
    """Builds version history, then vacuums a chunk table (twice, once
    discarding history) and the shared naming table — the compacted
    heap+index rewrite is the riskiest crash window in the system."""
    p = lambda tag, size: payload(seed, tag, size)  # noqa: E731
    return Workload("vacuum", [
        TxStep((("write", "/v", p("v0", 6000)), ("write", "/w", p("w0", 1000)))),
        TxStep((("write", "/v", p("v1", 6500)),)),
        TxStep((("write", "/v", p("v2", 300)),)),
        VacuumStep(path="/v"),
        TxStep((("write", "/v", p("v3", 2000)), ("unlink", "/w"))),
        VacuumStep(table="naming"),
        VacuumStep(path="/v", keep_history=False),
    ])


def migration_workload(seed: int = 0) -> Workload:
    """Files spilling from magnetic disk to NVRAM under a size rule;
    the second engine run must move the newly-written file and skip the
    already-migrated one."""
    p = lambda tag, size: payload(seed, tag, size)  # noqa: E731
    return Workload("migration", [
        TxStep((("write", "/big", p("g0", 6000)),
                ("write", "/small", p("s0", 500)))),
        MigrateStep("spill", 'size(file) > 4000', "nvram0"),
        TxStep((("write", "/big2", p("g1", 9000)),)),
        MigrateStep("spill2", 'size(file) > 4000', "nvram0"),
        TxStep((("unlink", "/small"),
                ("write", "/big", p("g2", 100)))),
    ], devices=(("nvram0", "memdisk"),))


def write_heavy_workload(seed: int = 0) -> Workload:
    """Large multi-chunk writes that leave long dense dirty runs in the
    buffer cache, so every commit exercises the coalesced write-back
    path (sorted runs handed to ``write_pages``) at every crash point."""
    p = lambda tag, size: payload(seed, tag, size)  # noqa: E731
    return Workload("write_heavy", [
        TxStep((("write", "/data0", p("w0", 20000)),
                ("write", "/data1", p("w1", 12000)))),
        TxStep((("write", "/data2", p("w2", 24000)),)),
        TxStep((("write", "/data0", p("w3", 26000)),)),   # grow in place
        TxStep((("write", "/data3", p("w4", 5000)),), abort=True),
        TxStep((("write", "/data1", p("w5", 800)),        # shrink
                ("write", "/data4", p("w6", 16500)))),
    ])


def group_commit_workload(seed: int = 0) -> Workload:
    """Small committing transactions under a positive group-commit
    window: commit records queue and land as multi-record appends, so a
    crash can lose the floating suffix (or tear mid-batch) — exactly the
    states the explorer's prefix oracle must accept and bound."""
    p = lambda tag, size: payload(seed, tag, size)  # noqa: E731
    return Workload("group_commit", [
        TxStep((("mkdir", "/g"), ("write", "/g/a", p("a0", 3000)))),
        TxStep((("write", "/g/b", p("b0", 1500)),)),
        TxStep((("write", "/g/c", p("c0", 9000)),)),
        TxStep((("write", "/g/a", p("a1", 500)),)),       # shrink
        TxStep((("unlink", "/g/b"), ("write", "/g/d", p("d0", 12000)))),
        TxStep((("write", "/g/e", p("e0", 2000)),)),
    ], group_commit_window=0.25)


def concurrent_workload(seed: int = 0) -> Workload:
    """Three interleaved client sessions under a group-commit window:
    each owns a private subtree (disjoint chunk-table locks) and all
    three overwrite one pre-created hot file (serialized by its
    exclusive lock, superseding each other in commit order).  Every
    interleaving is semantically valid, so the differential oracle —
    fed at commit order by the scheduler's commit hook — must match at
    every crash point."""
    p = lambda tag, size: payload(seed, tag, size)  # noqa: E731
    return Workload("concurrent", [], sessions=(
        (TxStep((("mkdir", "/c0"),
                 ("write", "/c0/a", p("0a", 3000)))),
         TxStep((("write", "/hot", p("0h", 1800)),)),
         TxStep((("write", "/c0/b", p("0b", 9000)),))),
        (TxStep((("mkdir", "/c1"),
                 ("write", "/c1/a", p("1a", 500)))),
         TxStep((("write", "/hot", p("1h", 2600)),)),
         TxStep((("write", "/c1/a", p("1b", 4000)),), abort=True),
         TxStep((("write", "/c1/b", p("1c", 1200)),))),
        (TxStep((("write", "/hot", p("2h", 700)),)),
         TxStep((("mkdir", "/c2"),
                 ("write", "/c2/a", p("2a", 14000)))),
         TxStep((("write", "/hot", p("2i", 2100)),))),
    ), setup_ops=(("write", "/hot", p("seed", 1000)),),
        group_commit_window=0.25, sched_seed=seed)


def cross_shard_workload(seed: int = 0) -> Workload:
    """Two explicitly-placed subtrees on two shards, driven through the
    sharded client: multi-shard atomic groups (2PC), a cross-shard file
    rename, a cross-shard *directory* rename, an abort, and plain
    single-shard transactions in between.  Every durable write — data
    forces, prepare records, the coordinator's decision force, phase-two
    commit records — is a crash boundary; at each one the recovered
    cluster must equal the oracle with the in-flight group either fully
    committed or fully absent.  A boundary where half a rename survives
    (source gone, target missing — or both present) is the violation
    this workload exists to catch."""
    p = lambda tag, size: payload(seed, tag, size)  # noqa: E731
    return Workload("cross_shard", [
        TxStep((("write", "/a/x", p("x0", 3000)),
                ("write", "/b/y", p("y0", 1500)))),        # 2 writers: 2PC
        TxStep((("rename", "/a/x", "/b/x"),)),             # cross-shard mv
        TxStep((("mkdir", "/a/d"),
                ("write", "/a/d/f", p("f0", 2500)),
                ("write", "/a/d/g", p("g0", 800)))),       # single-shard
        TxStep((("write", "/b/n", p("n0", 9000)),), abort=True),
        TxStep((("rename", "/a/d", "/b/d"),
                ("write", "/a/w", p("w0", 1200)))),        # dir mv + write
        TxStep((("unlink", "/b/x"),
                ("write", "/b/y", p("y1", 400)))),         # single-shard
    ], setup_ops=(("mkdir", "/a"), ("mkdir", "/b")),
        shards=2, assignments=(("a", 0), ("b", 1)))


ALL_WORKLOADS = {
    "commit": commit_workload,
    "vacuum": vacuum_workload,
    "migration": migration_workload,
    "write_heavy": write_heavy_workload,
    "group_commit": group_commit_workload,
    "concurrent": concurrent_workload,
}

#: sharded workloads are explored by ShardedCrashExplorer; they are
#: kept out of ALL_WORKLOADS so single-server tooling never sees them.
SHARDED_WORKLOADS = {
    "cross_shard": cross_shard_workload,
}
