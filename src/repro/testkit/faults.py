"""Fault-injecting device manager proxy.

:class:`FaultyDevice` wraps any :class:`~repro.devices.base.DeviceManager`
and is registered through the device switch's
:meth:`~repro.devices.switch.DeviceSwitch.wrap` hook (or, for a whole
database at once, :meth:`repro.db.database.Database.wrap_devices`, which
also rebinds the transaction manager's root-device handle so status-file
forces are intercepted too).

Injectable faults:

- **counted crash** — the shared :class:`CrashController` counts every
  durable write (``write_page``, ``sync_write_meta``,
  ``sync_append_meta``) across all proxied devices; at write index
  ``crash_after`` it raises :class:`~repro.errors.SimulatedCrashError`
  *instead of* performing the write, so exactly ``crash_after`` writes
  reached the media.  Every boundary in a run is therefore a distinct,
  deterministic crash point.
- **torn append** — with ``torn_append=True``, when the crash lands on a
  status-file append, a seeded prefix of the record is written first —
  the classic torn log tail.
- **partial multi-page flushes** fall out of the counted crash: a flush
  of *M* dirty pages crashed at write *k* leaves only the first pages
  durable.
- **transient I/O errors** — ``read_errors``/``write_errors`` name
  global operation indices that fail once with
  :class:`~repro.errors.InjectedFaultError`; a retry (the next index)
  succeeds.
- **permanent failures** — any I/O touching a relation named in
  ``broken_relations`` fails, always.

After the crash fires, every subsequent operation on the proxy raises —
a halted machine does not service I/O — until :meth:`CrashController.
disarm` is called (the explorer does this before discarding volatile
state and reopening).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.devices.base import DeviceManager
from repro.errors import InjectedFaultError, SimulatedCrashError


@dataclass(frozen=True)
class FaultPlan:
    """What to inject, declared up front so runs are reproducible."""

    #: crash in place of the durable write with this 0-based global
    #: index (None → never crash; counting still happens).
    crash_after: int | None = None
    #: when the crash lands on a status-file append, write a seeded
    #: prefix of the record before halting.
    torn_append: bool = False
    #: global read-operation indices that fail once (transient).
    read_errors: frozenset = frozenset()
    #: global write-operation indices that fail once (transient).
    write_errors: frozenset = frozenset()
    #: relations whose every read/write fails (permanent media damage).
    broken_relations: frozenset = frozenset()
    seed: int = 0


@dataclass
class CrashController:
    """Shared fault state across all of one database's proxies.

    One controller serves every :class:`FaultyDevice` of a database, so
    the write counter gives a single global ordering of durable writes
    regardless of which device they land on."""

    plan: FaultPlan = field(default_factory=FaultPlan)
    writes: int = 0
    reads: int = 0
    crashed: bool = False
    armed: bool = True
    #: (kind, device, detail) per performed durable write — lets tests
    #: inspect exactly what reached the media before a crash.
    write_log: list = field(default_factory=list)

    def disarm(self) -> None:
        """Stop injecting (recovery and post-mortem inspection run
        against the real devices' behavior)."""
        self.armed = False

    # -- gates -----------------------------------------------------------

    def _check_down(self) -> None:
        if self.armed and self.crashed:
            raise SimulatedCrashError("machine is down (crash already fired)")

    def read_gate(self, device: str, detail: str, relname: str | None = None) -> None:
        self._check_down()
        if not self.armed:
            return
        if relname is not None and relname in self.plan.broken_relations:
            raise InjectedFaultError(
                f"permanent media failure on {device}:{relname}")
        index = self.reads
        self.reads += 1
        if index in self.plan.read_errors:
            raise InjectedFaultError(
                f"transient read error #{index} on {device} ({detail})")

    def write_gate(self, kind: str, device: str, detail: str,
                   relname: str | None = None) -> None:
        """Gate one durable write.  Raises to suppress it; returns to
        let it through (and logs it as performed)."""
        self._check_down()
        if not self.armed:
            return
        if relname is not None and relname in self.plan.broken_relations:
            raise InjectedFaultError(
                f"permanent media failure on {device}:{relname}")
        index = self.writes
        if self.plan.crash_after is not None and index >= self.plan.crash_after:
            self.crashed = True
            raise SimulatedCrashError(
                f"simulated power failure in place of write #{index} "
                f"({kind} {device} {detail})")
        self.writes += 1
        if index in self.plan.write_errors:
            raise InjectedFaultError(
                f"transient write error #{index} on {device} ({detail})")
        self.write_log.append((kind, device, detail))

    def append_gate(self, device: str, tag: str, length: int) -> int | None:
        """Gate a status-file append.  Returns None for a full write, or
        the number of prefix bytes to write before halting (torn tail)."""
        self._check_down()
        if not self.armed:
            return None
        index = self.writes
        if self.plan.crash_after is not None and index >= self.plan.crash_after:
            self.crashed = True
            if self.plan.torn_append and length > 0:
                # Seeded by (seed, index): the same crash point always
                # tears at the same byte.  The cut never includes the
                # final newline, so a torn record is visibly incomplete.
                return random.Random(f"{self.plan.seed}:{index}").randrange(length)
            raise SimulatedCrashError(
                f"simulated power failure in place of append #{index} "
                f"({device} meta:{tag})")
        self.writes += 1
        if index in self.plan.write_errors:
            raise InjectedFaultError(
                f"transient write error #{index} on {device} (meta:{tag})")
        self.write_log.append(("append", device, tag))
        return None


class FaultyDevice(DeviceManager):
    """Interposing proxy: every call is delegated to ``inner``, with
    the controller's gates in front of the I/O paths."""

    def __init__(self, inner: DeviceManager, controller: CrashController) -> None:
        self.inner = inner
        self.ctrl = controller
        self.name = inner.name
        self.nonvolatile = inner.nonvolatile

    # -- relation lifecycle.  create/drop/rename mutate durable device
    # metadata, so each is a counted crash boundary — that is what lets
    # the explorer land *between* the renames of vacuum's heap+index
    # swap and prove the redo journal completes it.  extend is only
    # allocation bookkeeping (no data reaches the medium until the page
    # is written) and is not counted.

    def create_relation(self, relname: str) -> None:
        self.ctrl.write_gate("create", self.name, relname)
        self.inner.create_relation(relname)

    def drop_relation(self, relname: str) -> None:
        self.ctrl.write_gate("drop", self.name, relname)
        self.inner.drop_relation(relname)

    def rename_relation(self, src: str, dst: str) -> None:
        self.ctrl.write_gate("rename", self.name, f"{src}->{dst}")
        self.inner.rename_relation(src, dst)

    def relation_exists(self, relname: str) -> bool:
        return self.inner.relation_exists(relname)

    def list_relations(self) -> list[str]:
        return self.inner.list_relations()

    def nblocks(self, relname: str) -> int:
        return self.inner.nblocks(relname)

    def extend(self, relname: str) -> int:
        self.ctrl._check_down()
        return self.inner.extend(relname)

    # -- gated page I/O ---------------------------------------------------

    def read_page(self, relname: str, pageno: int) -> bytes:
        self.ctrl.read_gate(self.name, f"{relname}:{pageno}", relname)
        return self.inner.read_page(relname, pageno)

    def read_pages(self, relname: str, start: int, count: int) -> list[bytes]:
        # Each page of the batch passes the read gate individually, so
        # injected read errors and broken-relation faults hit batched
        # reads exactly as they would the page-at-a-time path.
        for pageno in range(start, start + count):
            self.ctrl.read_gate(self.name, f"{relname}:{pageno}", relname)
        return self.inner.read_pages(relname, start, count)

    def write_page(self, relname: str, pageno: int, data: bytes) -> None:
        self.ctrl.write_gate("page", self.name, f"{relname}:{pageno}", relname)
        self.inner.write_page(relname, pageno, data)

    def write_pages(self, relname: str, start: int,
                    datas: list[bytes]) -> None:
        # Every page of the batch is its own counted crash boundary and
        # is written through individually: a coalesced flush crashed at
        # write k leaves exactly the first pages of the run durable —
        # the same prefix semantics a page-at-a-time flush would have.
        for i, data in enumerate(datas):
            pageno = start + i
            self.ctrl.write_gate("page", self.name,
                                 f"{relname}:{pageno}", relname)
            self.inner.write_page(relname, pageno, data)

    # -- gated durability -------------------------------------------------

    def flush(self) -> None:
        self.ctrl._check_down()
        self.inner.flush()

    def sync_write_meta(self, tag: str, data: bytes) -> None:
        self.ctrl.write_gate("meta", self.name, f"meta:{tag}")
        self.inner.sync_write_meta(tag, data)

    def sync_append_meta(self, tag: str, data: bytes) -> None:
        cut = self.ctrl.append_gate(self.name, tag, len(data))
        if cut is None:
            self.inner.sync_append_meta(tag, data)
            return
        if cut:
            self.inner.sync_append_meta(tag, data[:cut])
        raise SimulatedCrashError(
            f"simulated power failure tore append to {tag!r} at byte {cut}")

    def read_meta(self, tag: str) -> bytes | None:
        self.ctrl._check_down()
        return self.inner.read_meta(tag)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self.inner.close()

    def simulate_crash(self) -> None:
        self.inner.simulate_crash()

    def rebind_clock(self, clock) -> None:
        self.inner.rebind_clock(clock)

    def describe(self) -> dict[str, object]:
        row = self.inner.describe()
        row["fault_proxy"] = True
        return row

    def __getattr__(self, attr):
        # Delegate device-specific extras (``disk``, ``stats``, ...).
        return getattr(self.inner, attr)
