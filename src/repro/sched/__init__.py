"""Deterministic multi-session scheduling.

The paper's promise — "a standard database two-phase locking protocol
[GRAY76] allows concurrent access to files" — only earns its keep when
more than one session is in flight.  This package interleaves N client
sessions over one :class:`~repro.core.server.InversionServer` without
real threads: a seeded cooperative event loop advances sessions one
RPC at a time on the simulated clock, parks lock waiters while other
sessions run, retries deadlock victims with capped exponential
backoff, and bounds admission so overload produces backpressure
instead of unbounded queues.  Same seed ⇒ identical interleaving,
which keeps the crash-schedule explorer and the byte-identical bench
gates working under concurrency.
"""

from repro.sched.scheduler import (Apply, Call, MultiUserScheduler, Ref,
                                   SchedStats, Session, Txn)

__all__ = [
    "Apply", "Call", "MultiUserScheduler", "Ref", "SchedStats", "Session",
    "Txn",
]
