"""The deterministic multi-session scheduler.

One :class:`MultiUserScheduler` drives N client sessions against one
:class:`~repro.core.server.InversionServer` on a single thread.  Each
session is a *program*: a list of :class:`Call` requests (auto-commit)
and :class:`Txn` blocks (begin → calls → commit, retried as a unit when
chosen as a deadlock victim).  The event loop advances one session by
one request per slice, picking the next session with a seeded RNG —
same seed, same programs ⇒ byte-identical interleaving, event trace,
and simulated-clock history.

Yield points are the natural concurrency seams of the system:

- **RPC boundaries** — every slice is one ``server.dispatch`` call, so
  sessions interleave between requests exactly as network clients do;
- **lock waits** — the scheduler installs a
  :class:`SchedulerWaitStrategy` on the database's
  :class:`~repro.db.locks.LockManager`; a session that blocks on a
  lock *parks* and the loop runs other sessions' requests (advancing
  the simulated clock) until the lock frees, times out in simulated
  seconds, or the waits-for graph picks a victim.  Lock waits finally
  advance simulated time and land in the per-xid
  :class:`~repro.obs.accounting.TxAccountant` breakdown;
- **I/O** — simulated device time is charged inside each slice, so the
  clock the fairness guard and backoff timers read reflects real
  (simulated) work.

Admission control bounds the in-flight session count: sessions beyond
``max_inflight`` queue (FIFO) up to ``admission_queue`` deep, and
further submissions fail fast with
:class:`~repro.errors.SchedAdmissionError` — backpressure, not an
unbounded queue.  A fairness guard forces any runnable session whose
wait exceeds ``fairness_bound`` simulated seconds to run next, so no
session starves behind an unlucky RNG streak.

Context switches on one thread need two swaps the threaded world gets
for free: the per-xid accountant's "current transaction" is re-pointed
at the incoming session's open xid, and the tracer's open-span stack is
swapped to the session's own (each session's spans form their own
request trees).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field

from repro.errors import (DeadlockError, LockTimeoutError,
                          SchedAdmissionError, SchedStalledError,
                          SessionFailedError)
from repro.obs.registry import HistogramValue, MetricSpec

METRICS = (
    MetricSpec("sched.slices", "counter", "slices",
               "Requests dispatched by the scheduler (one slice = one "
               "request of one session).",
               "repro.sched.scheduler"),
    MetricSpec("sched.context_switches", "counter", "switches",
               "Slices that ran a different session than the previous "
               "slice.",
               "repro.sched.scheduler"),
    MetricSpec("sched.lock_parks", "counter", "parks",
               "Times a session parked in the scheduler waiting for a "
               "lock while other sessions ran.",
               "repro.sched.scheduler"),
    MetricSpec("sched.retries", "counter", "retries",
               "Transactions re-run after their session was chosen as "
               "a deadlock victim or timed out on a lock.",
               "repro.sched.scheduler"),
    MetricSpec("sched.backoff_seconds", "histogram", "seconds",
               "Simulated seconds slept before each victim retry "
               "(capped exponential).",
               "repro.sched.scheduler"),
    MetricSpec("sched.admission_waits", "counter", "sessions",
               "Sessions that queued for admission because the "
               "in-flight limit was reached.",
               "repro.sched.scheduler"),
    MetricSpec("sched.rejected", "counter", "sessions",
               "Session submissions refused by backpressure (admission "
               "queue full).",
               "repro.sched.scheduler"),
    MetricSpec("sched.idle_advances", "counter", "ops",
               "Wait quanta burned with every other session parked or "
               "asleep (a parked waiter advancing the clock toward its "
               "own timeout).",
               "repro.sched.scheduler"),
)

# Session states.
QUEUED = "queued"        # waiting for admission
READY = "ready"          # runnable, waiting to be picked
RUNNING = "running"      # currently dispatching a request
PARKED = "parked"        # blocked on a lock inside a dispatch
SLEEPING = "sleeping"    # backing off before a victim retry
DONE = "done"
FAILED = "failed"

#: sentinel distinguishing "cache couldn't serve" from a served None.
_CACHE_MISS = object()


class Ref:
    """Placeholder argument: the result of an earlier request in the
    same session, by program ordinal (``Call``/``Apply`` items are
    numbered 0.. in program order).  ``Call("p_write", Ref(0), b"x")``
    writes to the fd returned by the session's first request."""

    __slots__ = ("ordinal",)

    def __init__(self, ordinal: int) -> None:
        self.ordinal = ordinal

    def __repr__(self) -> str:
        return f"Ref({self.ordinal})"


class Call:
    """One client request: a ``p_*`` method dispatched through the
    server.  Top-level Calls auto-commit (the library wraps them in a
    one-shot transaction); inside a :class:`Txn` they run under the
    session's open transaction."""

    __slots__ = ("method", "args", "kwargs")

    def __init__(self, method: str, *args, **kwargs) -> None:
        self.method = method
        self.args = args
        self.kwargs = kwargs

    @property
    def label(self) -> str:
        return self.method

    def __repr__(self) -> str:
        return f"Call({self.method!r})"


class Apply:
    """A direct file-system operation ``fn(fs, tx)`` run under the
    session's open transaction — the seam the crash testkit uses to
    drive its model ops through the scheduler.  Only valid inside a
    :class:`Txn` (it needs the open transaction)."""

    __slots__ = ("_label", "fn")

    def __init__(self, label: str, fn) -> None:
        self._label = label
        self.fn = fn

    @property
    def label(self) -> str:
        return self._label

    def __repr__(self) -> str:
        return f"Apply({self._label!r})"


class Txn:
    """A transaction block: ``p_begin``, the items (one per slice),
    then ``p_commit`` (or ``p_abort`` when ``abort=True``).  On
    :class:`~repro.errors.DeadlockError` or
    :class:`~repro.errors.LockTimeoutError` the whole block is aborted,
    the session backs off (capped exponential, simulated seconds), and
    the block re-runs from ``p_begin`` — the automatic victim retry the
    paper's client library left to applications."""

    __slots__ = ("items", "abort", "tag")

    def __init__(self, items, abort: bool = False, tag=None) -> None:
        self.items = list(items)
        self.abort = abort
        self.tag = tag


@dataclass
class SchedStats:
    """Scheduler-lifetime counters, mirrored onto the session's metrics
    registry under the ``sched.*`` families."""

    slices: int = 0
    context_switches: int = 0
    lock_parks: int = 0
    retries: int = 0
    backoff_seconds: HistogramValue = field(default_factory=HistogramValue)
    admission_waits: int = 0
    rejected: int = 0
    idle_advances: int = 0


class _Unit:
    """One compiled program item (a Txn block or a lone Call)."""

    __slots__ = ("txn", "items", "ordinals", "attempt")

    def __init__(self, txn: Txn | None, items: list, ordinals: list[int]) -> None:
        self.txn = txn          # None for a lone auto-commit Call
        self.items = items
        self.ordinals = ordinals
        self.attempt = 0


class Session:
    """One client session: its program, its server connection, and the
    bookkeeping the fairness report is built from."""

    def __init__(self, sid: int, name: str, units: list[_Unit],
                 submitted_at: float) -> None:
        self.sid = sid
        self.name = name
        self.units = units
        self.state = QUEUED
        self.conn: int | None = None
        #: program counter: current unit / phase within the unit
        #: (-1 = p_begin pending, 0..n-1 = item index, n = commit).
        self.unit_idx = 0
        self.phase = -1
        #: ordinal -> result of each completed request.
        self.values: dict[int, object] = {}
        self.wake_time = 0.0
        self.ready_since = submitted_at
        self.submitted_at = submitted_at
        self.admission_wait = 0.0
        self.error: str | None = None
        # fairness bookkeeping (simulated seconds)
        self.slices = 0
        self.retries = 0
        self.park_seconds = 0.0
        self.max_park = 0.0
        self.max_ready_wait = 0.0
        #: the session's own open-span stack (swapped in per slice).
        self.span_stack: list[int] = []
        #: per-session :class:`~repro.cache.ClientCache` when the
        #: scheduler was built with a ``cache_factory``.
        self.cache = None
        #: xid of the transaction begun by the current Txn unit, kept
        #: for the commit hook (the crash testkit's oracle seam).
        self._last_xid: int | None = None

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED)

    def report_row(self) -> dict:
        return {
            "name": self.name,
            "state": self.state,
            "slices": self.slices,
            "retries": self.retries,
            "admission_wait_s": self.admission_wait,
            "lock_park_s": self.park_seconds,
            "max_park_s": self.max_park,
            "max_ready_wait_s": self.max_ready_wait,
            "error": self.error,
        }


class SchedulerWaitStrategy:
    """The lock manager wait path under the scheduler: the waiting
    session parks and the event loop runs *other* sessions' requests —
    which is how a lock wait spends simulated time doing the system's
    other work instead of wall time doing nothing.  Timeouts are in
    simulated seconds."""

    def __init__(self, sched: "MultiUserScheduler") -> None:
        self.sched = sched

    def suspended_xids(self) -> set:
        """xids of sessions parked beneath the current one on the
        scheduler's call stack.  The lock manager exempts them from the
        FIFO no-barge rule: a stack-suspended waiter cannot acquire
        until control unwinds through the requester, so queueing behind
        it would deadlock the event loop, not the data."""
        sched = self.sched
        out = set()
        for session in sched._running[:-1]:
            tx = sched.server._sessions[session.conn]._tx
            if tx is not None:
                out.add(tx.xid)
        return out

    def start(self, lm, xid: int, resource, mode: str) -> dict:
        sched = self.sched
        now = sched.clock.now()
        session = sched._running[-1] if sched._running else None
        if session is not None:
            session.state = PARKED
            sched.stats.lock_parks += 1
            sched._event("park", session.name, f"{mode} {resource!r}")
        return {"start": now, "deadline": now + lm.timeout_s,
                "session": session, "span": sched._park_span(resource, mode)}

    def wait_round(self, lm, ctx: dict) -> bool:
        sched = self.sched
        if sched.clock.now() >= ctx["deadline"]:
            return False
        acct = sched.db.obs.tx
        waiter_xid = acct.current_xid()
        # The lock manager's mutex is held here; release it so the
        # sessions we are about to run can take locks themselves, then
        # restore both the mutex and the waiter's accounting identity.
        lm._cond.release()
        try:
            sched._step_while_parked(ctx["deadline"])
        finally:
            acct.activate(waiter_xid)
            lm._cond.acquire()
        return sched.clock.now() < ctx["deadline"]

    def finish(self, lm, ctx: dict, xid: int) -> float:
        sched = self.sched
        elapsed = sched.clock.now() - ctx["start"]
        session = ctx["session"]
        if session is not None:
            session.state = RUNNING
            session.park_seconds += elapsed
            if elapsed > session.max_park:
                session.max_park = elapsed
            sched._event("unpark", session.name, f"{elapsed:.6f}")
        span = ctx.get("span")
        if span is not None:
            span.__exit__(None, None, None)
        return elapsed


class MultiUserScheduler:
    """Seeded cooperative event loop over N sessions of one server.

    Construction installs the scheduler's lock wait strategy on the
    server database's lock manager and mirrors the ``sched.*`` metric
    families onto its registry; :meth:`close` undoes both.
    """

    def __init__(self, server, seed: int = 0, max_inflight: int = 8,
                 admission_queue: int = 16, wait_quantum: float = 1e-4,
                 backoff_base: float = 0.005, backoff_cap: float = 0.08,
                 max_retries: int = 10, fairness_bound: float = 0.5,
                 cluster_commits: bool = True, cache_factory=None) -> None:
        self.server = server
        self.db = server.fs.db
        self.clock = self.db.clock
        self.seed = seed
        self.rng = random.Random(seed)
        self.max_inflight = max_inflight
        self.admission_queue = admission_queue
        self.wait_quantum = wait_quantum
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_retries = max_retries
        self.fairness_bound = fairness_bound
        self.cluster_commits = cluster_commits
        #: ``fn(server, conn) -> ClientCache`` — when set, every
        #: admitted session gets a lease-coherent client cache and the
        #: scheduler serves eligible p_stat/p_read slices from it (see
        #: :func:`repro.cache.session_cache_factory`).
        self.cache_factory = cache_factory
        self.stats = SchedStats()
        self.sessions: list[Session] = []
        self._admitted: list[Session] = []
        self._admission_q: list[Session] = []
        #: call stack of sessions currently inside a dispatch (the top
        #: is the innermost; everything below is parked on a lock).
        self._running: list[Session] = []
        self._last_ran: Session | None = None
        #: commit-burst drain flag (see :meth:`_pick`).
        self._draining = False
        #: deterministic event trace: (sim_time, kind, session, detail).
        self.trace: list[tuple] = []
        #: hook called as fn(session, tag, xid) right after a Txn's
        #: commit dispatch returns (the crash testkit's oracle seam).
        self.commit_hook = None
        self._closed = False
        self._old_wait_strategy = self.db.locks.wait_strategy
        self.db.locks.wait_strategy = SchedulerWaitStrategy(self)
        self._bind_metrics()

    # -- wiring ----------------------------------------------------------

    def _bind_metrics(self) -> None:
        registry = self.db.obs.metrics
        stats = self.stats
        for spec in METRICS:
            attr = spec.name.rsplit(".", 1)[-1]
            registry.register(spec).mirror(lambda s=stats, a=attr: getattr(s, a))

    def close(self) -> None:
        """Restore the lock manager's previous wait strategy and tear
        down any server sessions still connected."""
        if self._closed:
            return
        self._closed = True
        self.db.locks.wait_strategy = self._old_wait_strategy
        for session in self.sessions:
            if session.conn is not None and not session.finished:
                self.server.disconnect(session.conn)
                session.conn = None
            if session.cache is not None:
                session.cache.revoke()

    def __enter__(self) -> "MultiUserScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- admission -------------------------------------------------------

    def add_session(self, program, name: str | None = None) -> Session:
        """Submit a session program.  Admits it immediately while fewer
        than ``max_inflight`` sessions are in flight, queues it FIFO up
        to ``admission_queue`` deep, and refuses it (backpressure) past
        that."""
        sid = len(self.sessions)
        name = name or f"s{sid}"
        units = self._compile(program)
        session = Session(sid, name, units, self.clock.now())
        if len(self._admitted) < self.max_inflight:
            self.sessions.append(session)
            self._admit(session)
        elif len(self._admission_q) < self.admission_queue:
            self.sessions.append(session)
            self._admission_q.append(session)
            self.stats.admission_waits += 1
            self._event("queue", session.name, f"depth={len(self._admission_q)}")
        else:
            self.stats.rejected += 1
            self._event("reject", name, f"queue_full={self.admission_queue}")
            raise SchedAdmissionError(
                f"session {name!r} refused: {len(self._admitted)} in "
                f"flight and admission queue full "
                f"({self.admission_queue} deep)")
        return session

    @staticmethod
    def _compile(program) -> list[_Unit]:
        units: list[_Unit] = []
        ordinal = 0
        for item in program:
            if isinstance(item, Txn):
                ords = list(range(ordinal, ordinal + len(item.items)))
                ordinal += len(item.items)
                units.append(_Unit(item, item.items, ords))
            elif isinstance(item, Call):
                units.append(_Unit(None, [item], [ordinal]))
                ordinal += 1
            elif isinstance(item, Apply):
                raise TypeError(
                    f"{item!r} outside a Txn: Apply items need the "
                    f"session's open transaction")
            else:
                raise TypeError(f"unknown program item {item!r}")
        return units

    def _admit(self, session: Session) -> None:
        session.conn = self.server.connect()
        if self.cache_factory is not None:
            session.cache = self.cache_factory(self.server, session.conn)
        session.state = READY
        now = self.clock.now()
        session.admission_wait = now - session.submitted_at
        session.ready_since = now
        self._admitted.append(session)
        self._event("admit", session.name, f"conn={session.conn}")

    def _retire(self, session: Session, state: str) -> None:
        session.state = state
        self._admitted.remove(session)
        if session.conn is not None:
            # disconnect aborts any transaction a failed session left
            # open, releasing its locks for the survivors.
            self.server.disconnect(session.conn)
            session.conn = None
        if session.cache is not None:
            session.cache.revoke()
        self._event(state, session.name, session.error or "")
        if self._admission_q:
            self._admit(self._admission_q.pop(0))

    # -- the event loop --------------------------------------------------

    def run(self, strict: bool = True) -> dict:
        """Run every session to completion; returns the fairness
        report.  ``strict`` raises :class:`SessionFailedError` if any
        session exhausted its retry budget."""
        while True:
            self._wake_sleepers()
            if all(s.finished for s in self.sessions):
                break
            ready = [s for s in self._admitted if s.state == READY]
            if ready:
                self._run_slice(self._pick(ready))
                continue
            sleepers = [s for s in self._admitted if s.state == SLEEPING]
            if sleepers:
                target = min(s.wake_time for s in sleepers)
                self.clock.advance(max(0.0, target - self.clock.now()))
                continue
            raise SchedStalledError(
                "unfinished sessions but nothing runnable: "
                + ", ".join(f"{s.name}={s.state}" for s in self.sessions
                            if not s.finished))
        failed = [s for s in self.sessions if s.state == FAILED]
        if strict and failed:
            raise SessionFailedError(
                "; ".join(f"{s.name}: {s.error}" for s in failed))
        return self.fairness_report()

    def _wake_sleepers(self) -> None:
        now = self.clock.now()
        for session in self._admitted:
            if session.state == SLEEPING and session.wake_time <= now:
                session.state = READY
                session.ready_since = now

    def _pick(self, ready: list[Session]) -> Session:
        """Seeded random choice with a starvation guard: any session
        runnable for longer than ``fairness_bound`` simulated seconds
        preempts the lottery, oldest wait first.

        With ``cluster_commits`` (the default), sessions whose next
        request is ``p_commit`` are held back while any other ready
        session still has writing work — the classic group-commit
        delay, expressed as scheduling policy.  Writes from every
        session accumulate in the buffer cache, then the commits run
        back-to-back: the first committer's flush sweeps all of them in
        one sorted pass, the rest find their pages already clean, and
        the batched commit records share a single status force.  The
        starvation guard bounds the delay."""
        now = self.clock.now()
        overdue = [s for s in ready
                   if now - s.ready_since >= self.fairness_bound]
        if overdue:
            return min(overdue, key=lambda s: (s.ready_since, s.sid))
        ordered = sorted(ready, key=lambda s: s.sid)
        if self.cluster_commits:
            gated = [s for s in ordered if self._at_commit_gate(s)]
            if self._draining:
                # Drain mode: finish the whole commit burst back-to-back
                # before any session starts its next transaction —
                # otherwise the first committer's successor slices would
                # outrank the remaining gated commits and the batch
                # would trickle out one commit at a time.
                if gated:
                    ordered = gated
                else:
                    self._draining = False
            elif gated and len(gated) == len(ordered):
                self._draining = True
                ordered = gated
            elif gated:
                ordered = [s for s in ordered if not self._at_commit_gate(s)]
        return ordered[self.rng.randrange(len(ordered))]

    @staticmethod
    def _at_commit_gate(session: Session) -> bool:
        """True when the session's next request is the ``p_commit`` of
        a committing Txn (aborts are not gated: they force their status
        record immediately, so delaying them batches nothing)."""
        unit = session.units[session.unit_idx]
        return (unit.txn is not None and not unit.txn.abort
                and session.phase == len(unit.items))

    def _step_while_parked(self, deadline: float) -> None:
        """One scheduling step on behalf of a parked lock waiter: run
        another session's request if any is ready, else advance the
        clock toward the next wake-up (or burn one quantum toward the
        waiter's own timeout)."""
        self._wake_sleepers()
        ready = [s for s in self._admitted if s.state == READY]
        if ready:
            self._run_slice(self._pick(ready))
            return
        now = self.clock.now()
        sleepers = [s for s in self._admitted if s.state == SLEEPING]
        if sleepers:
            target = min(min(s.wake_time for s in sleepers), deadline)
            if target > now:
                self.clock.advance(target - now)
                return
        # Nothing runnable at all: the waiter's timeout is the only
        # event left, so jump straight to it (plus one quantum so the
        # deadline test is unambiguous) instead of burning quanta.
        self.stats.idle_advances += 1
        self.clock.advance(max(self.wait_quantum,
                               deadline + self.wait_quantum - now))

    # -- slices ----------------------------------------------------------

    def _resolve(self, session: Session, value):
        if isinstance(value, Ref):
            if value.ordinal not in session.values:
                raise SchedStalledError(
                    f"{session.name}: Ref({value.ordinal}) before its "
                    f"request completed")
            return session.values[value.ordinal]
        return value

    def _next_request(self, session: Session) -> tuple[str, tuple, dict, int | None]:
        """The (method, args, kwargs, ordinal) of the session's next
        request, given its unit/phase counters."""
        unit = session.units[session.unit_idx]
        if unit.txn is None:
            item = unit.items[0]
            args = tuple(self._resolve(session, a) for a in item.args)
            kwargs = {k: self._resolve(session, v)
                      for k, v in item.kwargs.items()}
            return item.method, args, kwargs, unit.ordinals[0]
        if session.phase == -1:
            return "p_begin", (), {}, None
        if session.phase == len(unit.items):
            return ("p_abort" if unit.txn.abort else "p_commit"), (), {}, None
        item = unit.items[session.phase]
        if isinstance(item, Apply):
            return "__apply__", (item,), {}, unit.ordinals[session.phase]
        args = tuple(self._resolve(session, a) for a in item.args)
        kwargs = {k: self._resolve(session, v) for k, v in item.kwargs.items()}
        return item.method, args, kwargs, unit.ordinals[session.phase]

    def _run_slice(self, session: Session) -> None:
        """Dispatch one request of ``session`` — the scheduler's unit
        of interleaving."""
        unit = session.units[session.unit_idx]
        method, args, kwargs, ordinal = self._next_request(session)
        self.stats.slices += 1
        session.slices += 1
        if self._last_ran is not session:
            self.stats.context_switches += 1
        self._last_ran = session
        now = self.clock.now()
        if session.state == READY:
            waited = now - session.ready_since
            if waited > session.max_ready_wait:
                session.max_ready_wait = waited
        session.state = RUNNING
        self._running.append(session)
        self._event("slice", session.name, method)
        obs = self.db.obs
        tx = self.server._sessions[session.conn]._tx
        obs.tx.activate(tx.xid if tx is not None else None)
        tracing = obs.tracer.enabled
        old_stack = obs.tracer.swap_stack(session.span_stack) if tracing \
            else None
        span = obs.tracer.span("sched.slice", session=session.name,
                               method=method) if tracing else None
        try:
            if span is not None:
                span.__enter__()
            try:
                result = self._dispatch(session, method, args, kwargs)
            finally:
                if span is not None:
                    span.__exit__(None, None, None)
        except (DeadlockError, LockTimeoutError) as exc:
            self._handle_victim(session, unit, exc)
            return
        finally:
            self._running.pop()
            if tracing:
                obs.tracer.swap_stack(old_stack)
            if session.state == RUNNING:
                session.state = READY
                session.ready_since = self.clock.now()
        if ordinal is not None:
            session.values[ordinal] = result
        self._advance_pc(session, unit, method)

    def _dispatch(self, session: Session, method: str, args: tuple,
                  kwargs: dict):
        if method == "__apply__":
            item = args[0]
            tx = self.server._sessions[session.conn]._tx
            return item.fn(self.server.fs, tx)
        cache = session.cache
        if cache is None:
            return self.server.dispatch(session.conn, method, *args, **kwargs)
        served = self._try_cache(session, cache, method, args, kwargs)
        if served is not _CACHE_MISS:
            return served
        seq = cache.inval_seq
        try:
            result = self.server.dispatch(session.conn, method,
                                          *args, **kwargs)
        finally:
            if not cache.revoked:
                cache.poll()
        self._cache_fill(session, cache, method, args, kwargs, result, seq)
        return result

    def _try_cache(self, session: Session, cache, method: str,
                   args: tuple, kwargs: dict):
        """Serve an eligible auto-commit p_stat/p_read from the
        session's cache.  Negative (ENOENT) entries are never served
        here — a raise out of a slice would fail the session — and
        transactional slices always reach the server."""
        if cache.revoked:
            return _CACHE_MISS
        server_session = self.server._sessions[session.conn]
        if server_session._tx is not None:
            return _CACHE_MISS
        cache.poll()
        if cache.revoked:
            return _CACHE_MISS
        if method == "p_stat":
            timestamp = args[1] if len(args) > 1 else kwargs.get("timestamp")
            if timestamp is not None:
                return _CACHE_MISS
            oid = cache.lookup_oid(args[0])
            if oid is not None:
                att = cache.lookup_att(oid)
                if att is not None:
                    cache.stats.hit("att")
                    return att
            cache.stats.miss("att")
            return _CACHE_MISS
        if method == "p_read":
            fd, length = args[0], args[1]
            desc = server_session._fds.get(fd)
            if (desc is None or desc.timestamp is not None
                    or not isinstance(length, int) or length <= 0):
                return _CACHE_MISS
            served = cache.serve_read(desc.fileid, desc.pos, length)
            if served is None:
                cache.stats.miss("chunk")
                return _CACHE_MISS
            data, owners = served
            acct = self.db.obs.tx
            for owner in owners:
                cache.stats.hit("chunk")
                if owner is not None:
                    acct.charge_xid(owner, "client_cache_hits")
            # The server-side descriptor is the authoritative position;
            # a cache-served read advances it exactly as the dispatch
            # would have.
            desc.pos += len(data)
            return data
        return _CACHE_MISS

    def _cache_fill(self, session: Session, cache, method: str, args: tuple,
                    kwargs: dict, result, seq: int) -> None:
        """Populate the cache from a successful dispatch — only if no
        invalidation notice landed while the request ran (lock parks
        let other sessions commit mid-slice)."""
        if cache.revoked or cache.inval_seq != seq:
            return
        server_session = self.server._sessions.get(session.conn)
        if server_session is None or server_session._tx is not None:
            return
        if method == "p_stat":
            timestamp = args[1] if len(args) > 1 else kwargs.get("timestamp")
            if timestamp is None and result is not None:
                cache.fill_path(args[0], result.file)
                cache.fill_att(result.file, result)
        elif method == "p_read":
            desc = server_session._fds.get(args[0])
            if (desc is not None and desc.timestamp is None
                    and isinstance(result, (bytes, bytearray)) and result):
                cache.fill_read(desc.fileid, desc.pos - len(result),
                                bytes(result), server_session.last_xid)

    def _advance_pc(self, session: Session, unit: _Unit, method: str) -> None:
        if unit.txn is None:
            done_unit = True
        elif session.phase == len(unit.items):
            if self.commit_hook is not None and not unit.txn.abort:
                self.commit_hook(session, unit.txn.tag, session._last_xid)
            done_unit = True
        else:
            if session.phase == -1:
                # remember the xid begun here for the commit hook.
                tx = self.server._sessions[session.conn]._tx
                session._last_xid = tx.xid if tx is not None else None
            session.phase += 1
            done_unit = False
        if done_unit:
            unit.attempt = 0
            session.unit_idx += 1
            session.phase = -1
            if session.unit_idx >= len(session.units):
                self._retire(session, DONE)

    def _handle_victim(self, session: Session, unit: _Unit, exc) -> None:
        """Deadlock-victim (or lock-timeout) recovery: abort the open
        transaction, roll the unit back, back off (capped exponential,
        simulated seconds), and retry the unit from its beginning."""
        self._event("victim", session.name, type(exc).__name__)
        conn_session = self.server._sessions[session.conn]
        if conn_session._tx is not None:
            self.server.dispatch(session.conn, "p_abort")
        for ordinal in unit.ordinals:
            session.values.pop(ordinal, None)
        session.phase = -1
        unit.attempt += 1
        if unit.attempt > self.max_retries:
            session.error = (f"retry budget exhausted after "
                             f"{self.max_retries} attempts: {exc}")
            self._retire(session, FAILED)
            return
        self.stats.retries += 1
        session.retries += 1
        backoff = min(self.backoff_cap,
                      self.backoff_base * (2 ** (unit.attempt - 1)))
        self.stats.backoff_seconds.observe(backoff)
        session.state = SLEEPING
        session.wake_time = self.clock.now() + backoff
        self._event("retry", session.name,
                    f"attempt={unit.attempt} backoff={backoff:.6f}")

    # -- tracing / reporting --------------------------------------------

    def _park_span(self, resource, mode: str):
        tracer = self.db.obs.tracer
        if not tracer.enabled:
            return None
        span = tracer.span("sched.park", resource=repr(resource), mode=mode)
        span.__enter__()
        return span

    def _event(self, kind: str, session: str, detail: str = "") -> None:
        self.trace.append((round(self.clock.now(), 9), kind, session, detail))

    def trace_hash(self) -> str:
        """SHA-256 over the event trace — the determinism gate: two
        runs with the same seed and programs must produce the same
        hash."""
        blob = json.dumps(self.trace, separators=(",", ":")).encode()
        return hashlib.sha256(blob).hexdigest()

    def fairness_report(self) -> dict:
        """Per-session scheduling statistics plus the starvation
        verdict: the longest any session sat runnable-but-not-run, to
        compare against ``fairness_bound``."""
        rows = [s.report_row() for s in self.sessions]
        max_ready_wait = max((r["max_ready_wait_s"] for r in rows),
                             default=0.0)
        max_park = max((r["max_park_s"] for r in rows), default=0.0)
        return {
            "seed": self.seed,
            "sessions": rows,
            "max_ready_wait_s": max_ready_wait,
            "max_park_s": max_park,
            "fairness_bound_s": self.fairness_bound,
            "starved": max_ready_wait > self.fairness_bound + self.wait_quantum,
            "slices": self.stats.slices,
            "context_switches": self.stats.context_switches,
            "lock_parks": self.stats.lock_parks,
            "retries": self.stats.retries,
            "idle_advances": self.stats.idle_advances,
        }
