#!/usr/bin/env python3
"""Fail on dead intra-repo links and anchors in the markdown docs.

Scans every tracked ``*.md`` file (or the paths given on the command
line) for inline markdown links, resolves the repo-relative targets,
and exits non-zero listing every target that does not exist.  External
links (http/https/mailto) are ignored.  Anchor fragments are validated
too: ``#section`` must name a heading in the same file and
``path.md#section`` a heading in the target file, using GitHub's
slugification (lowercase, spaces to dashes, punctuation dropped,
``-1``/``-2`` suffixes for duplicates).

Run:  python tools/check_doc_links.py [files...]
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: [text](target) — the markdown inline link form.
LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")

#: fenced-code regions are commands and examples, not links.
FENCE = re.compile(r"^(```|~~~)")

HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def tracked_markdown() -> list[str]:
    out = subprocess.run(["git", "ls-files", "*.md", "**/*.md"],
                         cwd=REPO, capture_output=True, text=True,
                         check=True).stdout
    return sorted(set(out.split()))


def _slugify(title: str) -> str:
    """GitHub's anchor algorithm: strip markdown emphasis/code marks,
    lowercase, drop everything but word characters, spaces and dashes,
    then turn spaces into dashes."""
    text = re.sub(r"[`*_]", "", title)
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # linked headings
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_in(path: str) -> set[str]:
    """Every anchor a heading in ``path`` defines (duplicate titles get
    ``-1``, ``-2``, … suffixes, like GitHub renders them)."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING.match(line)
            if not match:
                continue
            slug = _slugify(match.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def targets_in(path: str):
    """Yield (lineno, raw_target) for every intra-repo link."""
    in_fence = False
    with open(os.path.join(REPO, path), encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK.finditer(line):
                target = match.group(1)
                if target.startswith(EXTERNAL):
                    continue
                yield lineno, target


def main(argv: list[str]) -> int:
    files = argv or tracked_markdown()
    dead = []
    anchor_cache: dict[str, set[str]] = {}

    def anchors_of(resolved: str) -> set[str]:
        if resolved not in anchor_cache:
            anchor_cache[resolved] = anchors_in(resolved)
        return anchor_cache[resolved]

    for md in files:
        base = os.path.dirname(os.path.join(REPO, md))
        for lineno, target in targets_in(md):
            rel, _, fragment = target.partition("#")
            resolved = os.path.normpath(os.path.join(base, rel)) if rel \
                else os.path.join(REPO, md)
            if not os.path.exists(resolved):
                dead.append(f"{md}:{lineno}: dead link -> {target}")
                continue
            if fragment and resolved.endswith(".md"):
                if fragment.lower() not in anchors_of(resolved):
                    dead.append(f"{md}:{lineno}: dead anchor -> {target}")
    if dead:
        print("\n".join(dead))
        print(f"\n{len(dead)} dead intra-repo link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} markdown file(s): all intra-repo links "
          f"and anchors resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
