#!/usr/bin/env python3
"""Fail on dead intra-repo links in the markdown docs.

Scans every tracked ``*.md`` file (or the paths given on the command
line) for inline markdown links and bare file references, resolves the
repo-relative targets, and exits non-zero listing every target that
does not exist.  External links (http/https/mailto) and pure anchors
are ignored; ``path#anchor`` links are checked for the path only.

Run:  python tools/check_doc_links.py [files...]
"""

from __future__ import annotations

import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: [text](target) — the markdown inline link form.
LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")

#: fenced-code regions are commands and examples, not links.
FENCE = re.compile(r"^(```|~~~)")

EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def tracked_markdown() -> list[str]:
    out = subprocess.run(["git", "ls-files", "*.md", "**/*.md"],
                         cwd=REPO, capture_output=True, text=True,
                         check=True).stdout
    return sorted(set(out.split()))


def targets_in(path: str):
    """Yield (lineno, raw_target) for every intra-repo link."""
    in_fence = False
    with open(os.path.join(REPO, path), encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE.match(line.strip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK.finditer(line):
                target = match.group(1)
                if target.startswith(EXTERNAL) or target.startswith("#"):
                    continue
                yield lineno, target


def main(argv: list[str]) -> int:
    files = argv or tracked_markdown()
    dead = []
    for md in files:
        base = os.path.dirname(os.path.join(REPO, md))
        for lineno, target in targets_in(md):
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = os.path.normpath(os.path.join(base, rel))
            if not os.path.exists(resolved):
                dead.append(f"{md}:{lineno}: dead link -> {target}")
    if dead:
        print("\n".join(dead))
        print(f"\n{len(dead)} dead intra-repo link(s)", file=sys.stderr)
        return 1
    print(f"checked {len(files)} markdown file(s): all intra-repo links "
          f"resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
