"""Table 3: all nine operations in all three configurations.

The paper's headline comparisons:

- single-process Inversion "is faster than either of the network
  benchmarks in virtually all categories";
- "the important exception is in random write time, for which ULTRIX
  NFS using PRESTOserve is fastest";
- user code in the file system manager yields "performance as much as
  seven times better than that of ULTRIX NFS" (single 1 MB read:
  2.8 s vs 0.4 s).
"""

from conftest import report, run_scaled

from repro.bench.report import PAPER_TABLE3
from repro.bench.workload import Benchmark


def test_table3_all_configurations(benchmark, scaled_results):
    sp = benchmark.pedantic(lambda: run_scaled("inversion_sp"),
                            rounds=1, iterations=1)
    cs = run_scaled("inversion_cs")
    nfs = run_scaled("nfs")
    rows = []
    for op in Benchmark.ALL_OPS:
        rows.append((f"{op} (c/s | nfs | sp)", cs[op],
                     PAPER_TABLE3["inversion_cs"][op]))
        rows.append((f"  …nfs", nfs[op], PAPER_TABLE3["nfs"][op]))
        rows.append((f"  …sp", sp[op], PAPER_TABLE3["inversion_sp"][op]))
    report("Table 3 (scaled)", rows)

    # Single-process beats client/server everywhere (no wire to cross).
    for op in Benchmark.ALL_OPS:
        assert sp[op] <= cs[op] * 1.05, f"sp slower than cs on {op}"

    # Single-process beats NFS on reads (the "seven times" direction).
    for op in ("read_single", "read_seq_pages"):
        assert sp[op] < nfs[op], f"sp must beat NFS on {op}"
    # Random reads: at this reduced scale Inversion's fixed startup
    # costs (catalog + fileatt + index root reads) are a large share of
    # only ~19 operations; allow parity here — the full-size run shows
    # 1.8 s vs 3.2 s in Inversion's favour (EXPERIMENTS.md).
    assert sp["read_random_pages"] < nfs["read_random_pages"] * 1.25

    # The paper's noted exception: NFS+PRESTOserve wins random writes
    # against single-process Inversion.
    assert nfs["write_random_pages"] < sp["write_random_pages"]


def test_table3_single_process_read_speedup_factor(benchmark, scaled_results):
    benchmark.pedantic(lambda: run_scaled("inversion_sp"), rounds=1, iterations=1)
    sp = run_scaled("inversion_sp")
    nfs = run_scaled("nfs")
    factor = nfs["read_seq_pages"] / sp["read_seq_pages"]
    # Paper: 2.2/0.4 = 5.5x on sequential page reads (and "as much as
    # seven times" on the single-transfer case).  At the reduced scale
    # fixed startup costs dilute the factor (full size: 3.6x, see
    # EXPERIMENTS.md); the in-process path must still clearly win.
    assert factor > 1.15, f"speedup only {factor:.2f}x"


def test_table3_deterministic(benchmark, scaled_results):
    benchmark.pedantic(lambda: run_scaled("nfs"), rounds=1, iterations=1)
    """The simulation replaces the paper's mean-of-ten with exact
    determinism: two runs give identical numbers."""
    from conftest import SIZES, _BUILDERS
    from repro.bench.workload import Benchmark

    def once():
        built = _BUILDERS["inversion_sp"]()
        try:
            bench = Benchmark(built.adapter, SIZES)
            bench.op_create()
            bench.op_read_seq_pages()
            return bench.results["read_seq_pages"]
        finally:
            built.close()
    assert once() == once()
