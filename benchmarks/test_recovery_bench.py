"""Crash recovery cost: the status-file read vs an fsck-style scan.

"No file system consistency checker needs to run on the Inversion file
system after a crash since recovery is managed by the POSTGRES storage
manager.  File system recovery is essentially instantaneous."

The bench crashes a populated file system, measures the simulated cost
of (a) reopening — which *is* recovery — and (b) what a graph-traversal
checker in the fsck tradition would pay (a full scan of every allocated
page), and checks the gap is enormous and grows with data volume.
"""

import os
import shutil
import tempfile

from conftest import report

from repro.core.filesystem import InversionFS
from repro.core.library import InversionClient
from repro.db.database import Database
from repro.db.page import PAGE_SIZE
from repro.sim.clock import SimClock


def _populate(nbytes: int) -> str:
    workdir = tempfile.mkdtemp(prefix="recovery-bench-")
    db = Database.create(os.path.join(workdir, "db"))
    fs = InversionFS.mkfs(db)
    client = InversionClient(fs)
    client.p_mkdir("/data")
    per_file = 200_000
    index = 0
    written = 0
    while written < nbytes:
        n = min(per_file, nbytes - written)
        fd = client.p_creat(f"/data/f{index}")
        client.p_begin()
        client.p_write(fd, b"r" * n)
        client.p_commit()
        client.p_close(fd)
        written += n
        index += 1
    db.simulate_crash()
    return workdir


def _recovery_cost(workdir: str) -> tuple[float, float, int]:
    """(reopen cost, fsck-style full-scan cost, pages scanned)."""
    clock = SimClock()
    db = Database.open(os.path.join(workdir, "db"), clock=clock)
    # Opening resumes simulated time past recorded history; the genuine
    # recovery I/O is what the clock moved beyond that resume point.
    recovery = clock.now() - db.tm.max_recorded_time()
    # What fsck would do: read every allocated page of every relation.
    scan_start = clock.now()
    pages = 0
    for dev in db.switch:
        for relname in dev.list_relations():
            for pageno in range(dev.nblocks(relname)):
                dev.read_page(relname, pageno)
                pages += 1
    scan = clock.now() - scan_start
    db.close()
    shutil.rmtree(workdir, ignore_errors=True)
    return recovery, scan, pages


def test_recovery_is_instantaneous_and_scale_free(benchmark):
    def run():
        small = _recovery_cost(_populate(400_000))
        large = _recovery_cost(_populate(2_000_000))
        return small, large
    (rec_s, scan_s, pages_s), (rec_l, scan_l, pages_l) = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    report("Recovery: status-file read vs fsck-style full scan",
           [("reopen (=recovery), 0.4 MB volume", rec_s, None),
            ("full scan,          0.4 MB volume", scan_s, None),
            ("reopen (=recovery), 2 MB volume", rec_l, None),
            ("full scan,          2 MB volume", scan_l, None)])
    print(f"  pages scanned: {pages_s} vs {pages_l}")
    # Recovery is orders of magnitude below the scan...
    assert rec_s * 20 < scan_s
    assert rec_l * 50 < scan_l
    # ...and does not grow with the data (the scan does).
    assert scan_l > scan_s * 2
    assert rec_l < rec_s * 3 + 0.05
