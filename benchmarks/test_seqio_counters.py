"""Sequential-I/O fast-path acceptance: deterministic counter bounds.

The simulated clock and operation counters make these exact — a
regression in the range-read path (extra index descents), the device
batching (extra read operations), or the RPC batching (extra wire
messages) fails here before it shows up as a timing drift anywhere
else.  The run also emits ``BENCH_seqio.json`` at the repo root, which
CI archives and EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.bench.seqio import RPC_BATCH_CHUNKS, SEQIO_CHUNKS, run_seqio

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..", "BENCH_seqio.json")


@pytest.fixture(scope="module")
def seqio() -> dict:
    results = run_seqio()
    with open(BENCH_PATH, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    return results


def test_single_transfer_is_one_descent(seqio):
    """A cold-cache 1 MB read issued as one call resolves its whole
    chunk map with a single chunk-index descent (two would mean an
    archive index was consulted; per-chunk probing would be 128)."""
    single = seqio["sp"]["single_transfer"]
    assert single["chunk_index_descents"] <= 2, single


def test_single_transfer_device_reads_batched(seqio):
    """Heap I/O for the single-transfer read arrives in window-sized
    batches: at most ceil(chunks / window) data reads plus a small
    fixed number of index/catalog page reads."""
    single = seqio["sp"]["single_transfer"]
    window = single["readahead_window"]
    budget = math.ceil(SEQIO_CHUNKS / window)
    assert single["device_reads"] <= budget, single


def test_chunkwise_read_prefetches(seqio):
    """Chunk-at-a-time reads (the Figure 5 request pattern) still batch
    their device I/O via the buffer cache's read-ahead — and every
    prefetched page is used (sequential read-ahead wastes nothing)."""
    sp = seqio["sp"]
    assert sp["device_reads"] <= SEQIO_CHUNKS // 2, sp
    assert sp["prefetches"] >= SEQIO_CHUNKS // 2, sp
    assert sp["prefetch_hits"] == sp["prefetches"], sp


def test_chunkwise_read_one_descent_per_chunk(seqio):
    """The per-request pattern pays one descent per 8 KB call — the
    contrast the single-transfer numbers are measured against."""
    assert seqio["sp"]["chunk_index_descents"] == SEQIO_CHUNKS


def test_rpc_batching_speedup(seqio):
    """The batched read RPC is at least twice as fast on the Figure 5
    sequential-read shape (fewer per-message overheads on the wire)."""
    assert seqio["speedup"] >= 2.0, seqio["speedup"]
    before = seqio["cs_before"]
    after = seqio["cs_after"]
    assert after["elapsed_s"] < before["elapsed_s"]
    # 2 messages per RPC; batching shrinks the count by ~the batch size.
    assert after["net_messages"] * 4 < before["net_messages"], (before, after)
    assert after["batched_reads"] == math.ceil(
        SEQIO_CHUNKS / RPC_BATCH_CHUNKS), after
    assert after["buffered_reads"] >= SEQIO_CHUNKS - 2 * after["batched_reads"]


def test_results_written(seqio):
    with open(BENCH_PATH, encoding="utf-8") as f:
        on_disk = json.load(f)
    assert on_disk["speedup"] == seqio["speedup"]
