"""Figure 6: write throughput.

Paper: single 1 MB write — Inversion gets 43% of NFS; sequential pages
— 31%; random pages — 28%.  "In fact, the NFS measurements show no
degradation due to random accesses, since the whole 1 MByte write fits
in the PRESTOserve cache, and is not flushed to disk."
"""

from conftest import report, run_scaled

from repro.bench.report import PAPER_TABLE3

WRITE_OPS = ("write_single", "write_seq_pages", "write_random_pages")


def test_fig6_write_shapes(benchmark, scaled_results):
    inv = benchmark.pedantic(lambda: run_scaled("inversion_cs"),
                             rounds=1, iterations=1)
    nfs = run_scaled("nfs")
    rows = []
    for op in WRITE_OPS:
        rows.append((f"Inversion {op}", inv[op],
                     PAPER_TABLE3["inversion_cs"][op]))
        rows.append((f"NFS {op}", nfs[op], PAPER_TABLE3["nfs"][op]))
    report("Figure 6 (scaled): write throughput", rows)
    for op in WRITE_OPS:
        assert inv[op] > nfs[op], f"NFS must win {op} (PRESTOserve)"


def test_fig6_prestoserve_immune_to_random_writes(benchmark, scaled_results):
    benchmark.pedantic(lambda: run_scaled("nfs"), rounds=1, iterations=1)
    """The headline PRESTOserve effect: NFS random page writes cost
    about the same as sequential ones (the board absorbs both)."""
    nfs = run_scaled("nfs")
    degradation = nfs["write_random_pages"] / nfs["write_seq_pages"]
    assert degradation < 1.3, f"NFS random-write degradation {degradation:.2f}"


def test_fig6_inversion_random_writes_degrade(benchmark, scaled_results):
    benchmark.pedantic(lambda: run_scaled("inversion_sp"), rounds=1, iterations=1)
    """Inversion, with no NVRAM, *does* pay for random writes (paper:
    6.0 s vs 5.6 s sequential client/server, 2.9 vs 1.4 single
    process)."""
    inv = run_scaled("inversion_sp")
    # At the reduced benchmark scale the random offsets stay fairly
    # local, so only a mild penalty is guaranteed; the full-size run
    # (EXPERIMENTS.md) shows 3.5 s random vs 1.5 s sequential.
    assert inv["write_random_pages"] > inv["write_seq_pages"] * 0.85


def test_fig6_transaction_batching_helps_inversion(benchmark, scaled_results):
    benchmark.pedantic(lambda: run_scaled("inversion_sp"), rounds=1, iterations=1)
    """"Inversion … can obey the transaction constraints imposed by the
    client program, and commit a large number of writes
    simultaneously": one transactional 1 MB write beats the same bytes
    written as per-call transactions (which is how `create` runs)."""
    inv = run_scaled("inversion_sp")
    from conftest import SIZES
    create_rate = SIZES.file_size / inv["create"]
    batched_rate = SIZES.transfer_size / inv["write_single"]
    assert batched_rate > create_rate
