"""Figure 5: read throughput.

Paper: single large transfer — Inversion gets 80% of NFS; page-sized
sequential — 47%; page-sized random — 43% ("the additional overhead
incurred by traversing the Btree page index in Inversion accounts for
much of the slowdown").
"""

from conftest import report, run_scaled

from repro.bench.report import PAPER_TABLE3

READ_OPS = ("read_single", "read_seq_pages", "read_random_pages")


def test_fig5_read_shapes(benchmark, scaled_results):
    inv = benchmark.pedantic(lambda: run_scaled("inversion_cs"),
                             rounds=1, iterations=1)
    nfs = run_scaled("nfs")
    rows = []
    for op in READ_OPS:
        rows.append((f"Inversion {op}", inv[op],
                     PAPER_TABLE3["inversion_cs"][op]))
        rows.append((f"NFS {op}", nfs[op], PAPER_TABLE3["nfs"][op]))
    report("Figure 5 (scaled): read throughput", rows)

    # Page-sized transfers: NFS clearly ahead (paper: ~2.2x), within
    # the same decade.
    for op in ("read_seq_pages", "read_random_pages"):
        ratio = inv[op] / nfs[op]
        assert 1.2 <= ratio <= 6.0, f"{op} ratio {ratio:.2f}"
    # A single large transfer is Inversion's best case (one RPC): the
    # gap must be far smaller than the page-sized gap.
    single = inv["read_single"] / nfs["read_single"]
    paged = inv["read_seq_pages"] / nfs["read_seq_pages"]
    assert single < paged


def test_fig5_random_reads_cost_more_than_sequential(benchmark, scaled_results):
    benchmark.pedantic(lambda: run_scaled("inversion_cs"), rounds=1, iterations=1)
    inv = run_scaled("inversion_cs")
    assert inv["read_random_pages"] >= inv["read_seq_pages"] * 0.95


def test_fig5_remote_overhead_matches_paper_narrative(benchmark, scaled_results):
    benchmark.pedantic(lambda: run_scaled("inversion_sp"), rounds=1, iterations=1)
    """"Remote access adds between three and five seconds to the
    elapsed time of each [1 MB] test" — proportionally ~0.3 s at this
    scale.  Client/server minus single-process is the network cost."""
    inv_cs = run_scaled("inversion_cs")
    inv_sp = run_scaled("inversion_sp")
    overhead = inv_cs["read_seq_pages"] - inv_sp["read_seq_pages"]
    scaled_paper_low, scaled_paper_high = 0.08 * 2, 0.08 * 7
    assert scaled_paper_low < overhead < scaled_paper_high
