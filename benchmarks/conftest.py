"""Shared benchmark helpers.

Every benchmark runs the paper's workload at a reduced scale (the full
25 MB / 1 MB sizes are available via ``python -m repro.bench all``) and
checks *shape* properties: who wins, roughly by how much, and where the
paper's qualitative claims (PRESTOserve immunity to random writes,
B-tree cost on creation, …) show up.  Absolute simulated seconds for
the full-size runs are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import build_inversion_cs, build_inversion_sp, build_nfs
from repro.bench.workload import Benchmark, BenchmarkSizes

SCALE = 0.08
SIZES = BenchmarkSizes.scaled(SCALE)

_BUILDERS = {
    "inversion_cs": build_inversion_cs,
    "nfs": build_nfs,
    "inversion_sp": build_inversion_sp,
}

_cache: dict[str, dict[str, float]] = {}


def run_scaled(config: str, **kwargs) -> dict[str, float]:
    """Run the full scaled workload for one configuration, memoized for
    the session (the sim is deterministic, so re-running is waste)."""
    key = config + repr(sorted(kwargs.items()))
    if key not in _cache:
        built = _BUILDERS[config](**kwargs)
        try:
            bench = Benchmark(built.adapter, SIZES)
            _cache[key] = bench.run_all()
        finally:
            built.close()
    return _cache[key]


@pytest.fixture
def scaled_results():
    return run_scaled


def report(title: str, rows: list[tuple[str, float, float | None]]) -> None:
    """Print measured (and paper, when available) numbers."""
    print(f"\n{title}")
    for label, ours, paper in rows:
        extra = f"   [paper: {paper:g} s]" if paper is not None else ""
        print(f"  {label:<42} {ours:10.3f} s{extra}")
