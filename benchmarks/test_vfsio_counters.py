"""Transactional-VFS acceptance: deterministic counter bounds.

The vfsio experiment is exact by construction (simulated clock, page
and message counters), so the headline claims are asserted literally:
a by-reference reflink of the 8 MB source materializes zero chunks and
beats the physical copy by at least 10x in simulated time, and the
paged listing of the 512-file directory returns exactly the full
listing in bounded replies.  The run also emits ``BENCH_vfsio.json``
at the repo root, which CI archives and diffs against a double run for
determinism.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.vfsio import (MIN_SPEEDUP, NAMESPACE_FILES, NAMESPACE_PAGE,
                               STRUCT_CHUNKS, run_vfsio)

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_vfsio.json")


@pytest.fixture(scope="module")
def vfsio() -> dict:
    results = run_vfsio()
    with open(BENCH_PATH, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    return results


def test_reflink_moves_zero_data(vfsio):
    """The by-reference copy is pointer rows only: every chunk
    referenced, none materialized, and the device wrote a sliver of
    what the physical copy wrote."""
    s = vfsio["structural"]
    assert s["reflink"]["chunks_referenced"] == STRUCT_CHUNKS, s
    assert s["reflink"]["chunks_materialized"] == 0, s
    assert s["reflink"]["pages_written"] <= s["physical_copy"][
        "pages_written"] / 20, s


def test_reflink_speedup_at_least_10x(vfsio):
    assert vfsio["structural"]["speedup"] >= MIN_SPEEDUP, (
        vfsio["structural"])


def test_concat_and_slice_stay_by_reference(vfsio):
    s = vfsio["structural"]
    assert s["concat"]["chunks_referenced"] == 2 * STRUCT_CHUNKS, s
    assert s["concat"]["chunks_materialized"] == 0, s
    assert s["slice"]["chunks_referenced"] == STRUCT_CHUNKS // 2, s
    assert s["slice"]["chunks_materialized"] == 1, s  # the partial tail


def test_paged_listing_matches_full_within_bound(vfsio):
    n = vfsio["namespace"]
    assert n["full"]["names"] == NAMESPACE_FILES, n
    assert n["paged"]["names"] == NAMESPACE_FILES, n
    assert n["paged"]["max_reply_names"] <= NAMESPACE_PAGE, n
    assert n["paged"]["pages"] == -(-NAMESPACE_FILES // NAMESPACE_PAGE), n


def test_committed_artifact_matches_fresh_run(vfsio):
    """BENCH_vfsio.json at the repo root is exactly what a fresh run
    produces (the fixture just rewrote it; a drift here means the file
    was hand-edited or the workload changed without regenerating)."""
    with open(BENCH_PATH, encoding="utf-8") as f:
        assert json.load(f) == vfsio
