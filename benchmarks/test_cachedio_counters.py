"""Client-cache acceptance: deterministic counter bounds.

The cached-I/O experiment is exact by construction (simulated clock,
message counters), so the acceptance criteria are asserted literally:
warm re-reads/re-stats ship zero network messages, and the path-heavy
deep-tree workload runs at least 3x faster cached than uncached.  The
run also emits ``BENCH_cachedio.json`` at the repo root, which CI
archives and diffs against a double run for determinism.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.cachedio import (HOT_PASSES, TREE_LEAVES, TREE_PASSES,
                                  run_cachedio)

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_cachedio.json")


@pytest.fixture(scope="module")
def cachedio() -> dict:
    results = run_cachedio()
    with open(BENCH_PATH, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    return results


def test_warm_passes_ship_zero_messages(cachedio):
    """After warm-up, every re-stat, rewind and re-read is served from
    the client cache: not one message crosses the simulated wire."""
    hot = cachedio["hot"]
    assert hot["hot_messages"] == 0, hot
    assert hot["hot_elapsed_s"] == 0.0, hot


def test_every_hot_pass_hit_all_tiers(cachedio):
    hot = cachedio["hot"]
    assert hot["cache_hits"]["att"] == HOT_PASSES, hot
    assert hot["cache_hits"]["seek"] == HOT_PASSES, hot
    assert hot["cache_hits"]["chunk"] >= HOT_PASSES, hot


def test_deep_tree_speedup_at_least_3x(cachedio):
    tree = cachedio["deep_tree"]
    assert tree["speedup"] >= 3.0, tree


def test_deep_tree_cached_pays_one_pass(cachedio):
    """Cached, only the first pass reaches the server: the message
    count equals one uncached pass, and the uncached run pays it every
    pass."""
    tree = cachedio["deep_tree"]
    per_pass = 2 * TREE_LEAVES          # request + reply per stat
    assert tree["cached"]["net_messages"] == per_pass, tree
    assert tree["uncached"]["net_messages"] == per_pass * TREE_PASSES, tree


def test_committed_artifact_matches_fresh_run(cachedio):
    """BENCH_cachedio.json at the repo root is exactly what a fresh run
    produces (the fixture just rewrote it; a drift here means the file
    was hand-edited or the workload changed without regenerating)."""
    with open(BENCH_PATH, encoding="utf-8") as f:
        assert json.load(f) == cachedio
