"""Figure 4: random single-byte access.

Paper: reads — Inversion 0.02 s vs NFS 0.01 s ("70 percent of the
throughput"); writes — 0.03 s vs 0.02 s ("61 percent…  Since Inversion
never overwrites data in place, a new entry must be written to the
Btree block index, accounting for the difference").
"""

from conftest import report, run_scaled

from repro.bench.report import PAPER_TABLE3


def test_fig4_random_byte_shape(benchmark, scaled_results):
    inv = benchmark.pedantic(lambda: run_scaled("inversion_cs"),
                             rounds=1, iterations=1)
    nfs = run_scaled("nfs")
    report("Figure 4 (scaled): random single-byte access",
           [("Inversion read", inv["read_byte"],
             PAPER_TABLE3["inversion_cs"]["read_byte"]),
            ("NFS read", nfs["read_byte"],
             PAPER_TABLE3["nfs"]["read_byte"]),
            ("Inversion write", inv["write_byte"],
             PAPER_TABLE3["inversion_cs"]["write_byte"]),
            ("NFS write", nfs["write_byte"],
             PAPER_TABLE3["nfs"]["write_byte"])])
    # NFS wins both; Inversion's write is its worse direction (the
    # no-overwrite + index-entry cost the paper calls out).
    assert inv["read_byte"] > nfs["read_byte"]
    assert inv["write_byte"] > nfs["write_byte"]
    assert inv["write_byte"] >= inv["read_byte"] * 0.9


def test_fig4_latencies_are_milliseconds_not_seconds(benchmark, scaled_results):
    benchmark.pedantic(lambda: run_scaled("inversion_cs"), rounds=1, iterations=1)
    inv = run_scaled("inversion_cs")
    assert inv["read_byte"] < 0.5
    assert inv["write_byte"] < 0.5
