"""Commit/write-path fast-path acceptance: deterministic counter bounds.

The write-path twin of ``test_seqio_counters``: exact assertions on the
simulated clock and operation counters for group commit, coalesced
write-back, and the batched write RPC.  A regression in any of the
three (an extra forced status append, a flush that stops coalescing,
an RPC per chunk sneaking back in) fails here before it shows up as a
timing drift.  The run also emits ``BENCH_commitio.json`` at the repo
root, which CI archives and EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.bench.commitio import (
    GROUP_TXNS,
    RPC_BATCH_CHUNKS,
    WRITE_CHUNKS,
    run_commitio,
)

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_commitio.json")


@pytest.fixture(scope="module")
def commitio() -> dict:
    results = run_commitio()
    with open(BENCH_PATH, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    return results


def test_window_zero_reproduces_paper_force_counts(commitio):
    """The default configuration pays exactly one forced status append
    per writing commit — the paper's behaviour, asserted exactly."""
    before = commitio["group_commit"]["before"]
    assert before["status_forces"] == GROUP_TXNS
    assert before["commits_recorded"] == GROUP_TXNS
    assert before["commits_per_force"] == 1.0
    assert before["group_batches"] == 0


def test_group_commit_amortizes_the_force(commitio):
    """With the window open, the whole batch lands as one forced
    multi-record append, and commit throughput at least doubles."""
    after = commitio["group_commit"]["after"]
    assert after["status_forces"] == 1
    assert after["commits_recorded"] == GROUP_TXNS
    assert after["commits_per_force"] == GROUP_TXNS
    assert after["max_group"] == GROUP_TXNS
    assert commitio["group_commit"]["speedup"] >= 2.0, (
        commitio["group_commit"])
    # Amortizing the force also removes its device write per commit.
    before = commitio["group_commit"]["before"]
    assert (before["device_writes"] - after["device_writes"]
            == GROUP_TXNS - 1), (before, after)


def test_coalesced_writeback_halves_device_write_ops(commitio):
    """The 1 MB sequential write's flush arrives at the device in
    contiguous multi-page runs: at least 2x fewer write operations than
    page-at-a-time write-back (the positioning count the paper's disk
    pays per write)."""
    wb = commitio["writeback"]
    assert wb["write_op_ratio"] >= 2.0, wb
    # Coalescing changes operation count, never the pages written.
    assert wb["after"]["forced_writes"] == wb["before"]["forced_writes"]
    assert wb["after"]["batched_writes"] >= 1
    assert wb["after"]["write_coalesce_hits"] >= WRITE_CHUNKS // 2
    assert wb["before"]["batched_writes"] == 0
    assert wb["before"]["write_coalesce_hits"] == 0


def test_write_rpc_batching_speedup(commitio):
    """The batched write RPC at least halves the sequential-write wire
    time, shipping RPC_BATCH_CHUNKS chunks per message."""
    cs = commitio["cs_write"]
    assert cs["speedup"] >= 2.0, cs
    assert cs["after"]["net_messages"] * 4 < cs["before"]["net_messages"], cs
    assert cs["after"]["batched_writes"] == math.ceil(
        WRITE_CHUNKS / RPC_BATCH_CHUNKS), cs["after"]
    assert cs["after"]["buffered_writes"] == WRITE_CHUNKS
    assert cs["before"]["batched_writes"] == 0
    assert cs["before"]["buffered_writes"] == 0


def test_results_written(commitio):
    with open(BENCH_PATH, encoding="utf-8") as f:
        on_disk = json.load(f)
    assert on_disk["group_commit"]["speedup"] == (
        commitio["group_commit"]["speedup"])
