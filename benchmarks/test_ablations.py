"""Ablation benches for the design choices the paper calls out.

Each ablation flips exactly one mechanism and checks that the effect
the paper attributes to it actually appears in the model:

- the chunk-number B-tree (Figure 3's stated creation cost);
- PRESTOserve (Figure 6's stated write advantage);
- the buffer cache size (64 as shipped vs 300 as evaluated);
- write coalescing of small sequential writes;
- the jukebox's magnetic staging cache;
- chunk compression's storage/latency trade-off.
"""

from conftest import report, run_scaled

from repro.bench.harness import build_inversion_sp, build_nfs
from repro.bench.workload import Benchmark, BenchmarkSizes

SMALL = BenchmarkSizes.scaled(0.05)


def _run(built, ops=("create",), sizes=SMALL):
    try:
        bench = Benchmark(built.adapter, sizes)
        bench.op_create()
        results = dict(bench.results)
        for op in ops:
            if op != "create":
                getattr(bench, f"op_{op}")()
                results.update(bench.results)
        return results
    finally:
        built.close()


def test_ablation_btree_index_cost_on_creation(benchmark):
    """"For every page written to the file, Inversion must create a
    Btree index entry … penalizing Inversion."  Without the chunk
    index, creation gets faster — and seeks get slower."""
    def run():
        return (_run(build_inversion_sp(chunk_index=True))["create"],
                _run(build_inversion_sp(chunk_index=False))["create"])
    with_idx, without_idx = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation: chunkno B-tree during creation",
           [("with index", with_idx, None),
            ("without index", without_idx, None)])
    assert without_idx < with_idx


def test_ablation_prestoserve(benchmark):
    """NFS write throughput with and without the NVRAM board — the
    paper: "Inversion should have much better performance than NFS
    without non-volatile RAM"."""
    def run():
        with_board = _run(build_nfs(prestoserve=True), ("write_seq_pages",))
        without = _run(build_nfs(prestoserve=False), ("write_seq_pages",))
        return with_board, without
    with_board, without = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation: PRESTOserve on NFS sequential page writes",
           [("with board", with_board["write_seq_pages"], None),
            ("without board", without["write_seq_pages"], None)])
    assert with_board["write_seq_pages"] * 1.5 < without["write_seq_pages"]
    # And Inversion really does beat board-less NFS where the forced
    # writes seek — random page writes (each NFS write is its own
    # synchronous "transaction" with an inode force; Inversion batches
    # one commit).  The effect needs enough file span for the seeks to
    # bite, so this comparison runs at a larger scale.
    wide = BenchmarkSizes.scaled(0.3)
    inv = _run(build_inversion_sp(), ("write_random_pages",), sizes=wide)
    nfs_bare = _run(build_nfs(prestoserve=False),
                    ("write_random_pages",), sizes=wide)
    report("Ablation: random page writes without NVRAM",
           [("Inversion single-process", inv["write_random_pages"], None),
            ("NFS without PRESTOserve", nfs_bare["write_random_pages"], None)])
    assert inv["write_random_pages"] < nfs_bare["write_random_pages"]


def test_ablation_buffer_cache_size(benchmark):
    """64 buffers "as shipped" vs 300 "in use locally": re-reading a
    working set that fits only in the large cache."""
    # Working set sized between the two cache configurations:
    # ~149 chunk pages — too big for 64 buffers, fits in 300.
    reread_sizes = BenchmarkSizes(file_size=2_000_000,
                                  transfer_size=1_200_000)

    def reread_time(buffer_pages):
        built = build_inversion_sp(buffer_pages=buffer_pages)
        try:
            bench = Benchmark(built.adapter, reread_sizes)
            bench.op_create()
            # First read warms the cache, second measures retention.
            adapter = built.adapter
            handle = bench._handle
            adapter.begin()
            adapter.read_at(handle, 0, reread_sizes.transfer_size)
            start = adapter.clock.now()
            adapter.read_at(handle, 0, reread_sizes.transfer_size)
            elapsed = adapter.clock.now() - start
            adapter.commit()
            return elapsed
        finally:
            built.close()

    def run():
        return reread_time(300), reread_time(64)
    big, small = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation: buffer cache 300 vs 64 pages (warm re-read)",
           [("300 buffers", big, None), ("64 buffers", small, None)])
    assert big < small


def test_ablation_write_coalescing(benchmark):
    """"Multiple small sequential writes during a single transaction
    are coalesced to maximize the size of the chunk stored in each
    database record": small writes in one transaction produce one
    version per chunk, not one per write."""
    from repro.core.chunks import ChunkStore
    from repro.core.constants import CHUNK_SIZE

    def run():
        built = build_inversion_sp()
        try:
            adapter = built.adapter
            fs = adapter.client.fs
            fd = adapter.client.p_creat("/coalesce")
            adapter.client.p_begin()
            start = adapter.clock.now()
            for _ in range(CHUNK_SIZE // 64):
                adapter.client.p_write(fd, b"y" * 64)
            adapter.client.p_commit()
            coalesced_time = adapter.clock.now() - start
            store = ChunkStore(fs.db, fs.resolve("/coalesce"), None)
            coalesced_versions = store.version_count()

            fd2 = adapter.client.p_creat("/uncoalesced")
            start = adapter.clock.now()
            for _ in range(CHUNK_SIZE // 64):
                adapter.client.p_write(fd2, b"y" * 64)  # auto-commit each
            uncoalesced_time = adapter.clock.now() - start
            store2 = ChunkStore(fs.db, fs.resolve("/uncoalesced"), None)
            return (coalesced_time, coalesced_versions,
                    uncoalesced_time, store2.version_count())
        finally:
            built.close()

    ct, cv, ut, uv = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation: write coalescing (126 x 64-byte writes)",
           [("one transaction (coalesced)", ct, None),
            ("per-write transactions", ut, None)])
    print(f"  chunk versions: coalesced={cv}, uncoalesced={uv}")
    assert cv <= 2
    assert uv >= 100
    assert ct < ut


def test_ablation_jukebox_staging_cache(benchmark):
    """The Sony device manager "caches recently-used blocks on magnetic
    disk" because platter loads cost many seconds: repeated reads of a
    jukebox-resident file must not reload the platter."""
    from repro.devices.jukebox import JukeboxParams, SonyJukebox
    from repro.db.page import PAGE_SIZE
    from repro.sim.clock import SimClock

    def run_with(staging_bytes):
        clock = SimClock()
        juke = SonyJukebox("j", clock,
                           JukeboxParams(staging_cache_bytes=staging_bytes))
        juke.create_relation("r")
        for i in range(16):
            p = juke.extend("r")
            juke.write_page("r", p, bytes([i]) * PAGE_SIZE)
        juke.flush()
        juke._loaded.clear()
        start = clock.now()
        for _round in range(4):
            for p in range(16):
                juke.read_page("r", p)
        return clock.now() - start

    def run():
        return run_with(10_000_000), run_with(2 * PAGE_SIZE)
    cached, tiny = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation: jukebox staging cache (4 passes over 16 pages)",
           [("10 MB staging cache", cached, None),
            ("2-page staging cache", tiny, None)])
    assert cached * 2 < tiny


def test_ablation_compression_tradeoff(benchmark):
    """Compression: large storage savings, modest random-read cost."""
    from repro.core.compression import CompressionService
    from repro.db.database import Database
    from repro.core.filesystem import InversionFS
    from repro.sim.clock import SimClock
    import shutil, tempfile

    def run():
        workdir = tempfile.mkdtemp(prefix="ablate-comp-")
        clock = SimClock()
        db = Database.create(workdir + "/db", clock=clock)
        fs = InversionFS.mkfs(db)
        svc = CompressionService(fs)
        data = b"".join(b"record %08d with padding\n" % i
                        for i in range(8000))
        tx = fs.begin()
        svc.create_compressed(tx, "/z", data)
        fs.write_file(tx, "/raw", data)
        fs.commit(tx)
        stored_z = fs.stat("/z").size
        stored_raw = fs.stat("/raw").size
        db.flush_caches()
        start = clock.now()
        svc.read("/z", len(data) // 2, 100)
        z_latency = clock.now() - start
        db.flush_caches()
        start = clock.now()
        with fs.open("/raw") as f:
            f.seek(len(data) // 2)
            f.read(100)
        raw_latency = clock.now() - start
        db.close()
        shutil.rmtree(workdir, ignore_errors=True)
        return stored_z, stored_raw, z_latency, raw_latency

    sz, sraw, zl, rl = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nAblation: compression — stored {sz} vs {sraw} bytes; "
          f"random 100-byte read {zl*1000:.2f} ms vs {rl*1000:.2f} ms")
    assert sz < sraw // 2          # good storage utilization
    assert zl < rl * 5             # "reasonable random access times"
