"""Figure 3: 25 MByte file creation times.

Paper: Inversion 141.5 s vs ULTRIX NFS 50.6 s — "Inversion gets about
36% of the throughput of NFS for file creation.  This difference is due
primarily to the extra overhead in maintaining indices in Inversion."
"""

from conftest import SIZES, report, run_scaled

from repro.bench.report import PAPER_TABLE3


def test_fig3_create_shape(benchmark, scaled_results):
    inv = benchmark.pedantic(lambda: run_scaled("inversion_cs"),
                             rounds=1, iterations=1)
    nfs = run_scaled("nfs")
    report("Figure 3 (scaled): create file",
           [("Inversion client/server", inv["create"],
             PAPER_TABLE3["inversion_cs"]["create"]),
            ("ULTRIX NFS + PRESTOserve", nfs["create"],
             PAPER_TABLE3["nfs"]["create"])])
    ratio = inv["create"] / nfs["create"]
    # Paper ratio 2.80; shape: NFS clearly wins, within the same decade.
    assert 1.5 <= ratio <= 6.0, f"creation ratio {ratio:.2f} out of shape"


def test_fig3_nfs_throughput_reasonable(benchmark, scaled_results):
    benchmark.pedantic(lambda: run_scaled("nfs"), rounds=1, iterations=1)
    """NFS creation throughput lands in the right regime (paper:
    ≈ 0.5 MB/s on the 1993 hardware)."""
    nfs = run_scaled("nfs")
    throughput = SIZES.file_size / nfs["create"]
    assert 100_000 < throughput < 2_000_000
