"""The [STON93] local comparison.

"[STON93] presents the results of such a benchmark … Those results show
that Inversion gets better than 90% of the throughput of the native
file system on large sequential transfers, and roughly 70% of the
throughput on small, uniformly random transfers."

Here the native file system is the local FFS simulator driven directly
(no NFS protocol, no network) against single-process Inversion on the
same drive model.
"""

from conftest import report

from repro.bench.harness import build_inversion_sp
from repro.bench.workload import Benchmark, BenchmarkSizes
from repro.nfs.ffs import FastFileSystem
from repro.sim.clock import SimClock
from repro.sim.disk import DiskModel

SIZES = BenchmarkSizes.scaled(0.4)


def _local_ffs_times():
    clock = SimClock()
    ffs = FastFileSystem(clock, DiskModel(clock=clock))
    inode = ffs.create("/f")
    pos = 0
    payload = bytes(8192)
    while pos < SIZES.file_size:
        ffs.write(inode, pos, payload, sync=False)
        pos += 8192
    ffs.flush()
    results = {}
    ffs.drop_caches()
    start = clock.now()
    ffs.read(inode, 0, SIZES.transfer_size)
    results["seq_read"] = clock.now() - start
    import random
    rng = random.Random(99)
    offsets = [rng.randrange(SIZES.file_size // 8192) * 8192
               for _ in range(SIZES.transfer_size // 8192)]
    ffs.drop_caches()
    start = clock.now()
    for off in offsets:
        ffs.read(inode, off, 8192)
    results["random_read"] = clock.now() - start
    return results


def _local_inversion_times():
    built = build_inversion_sp()
    try:
        bench = Benchmark(built.adapter, SIZES)
        bench.op_create()
        bench.op_read_single()
        bench.op_read_random_pages()
        return {"seq_read": bench.results["read_single"],
                "random_read": bench.results["read_random_pages"]}
    finally:
        built.close()


def test_local_comparison_shapes(benchmark):
    inv = benchmark.pedantic(_local_inversion_times, rounds=1, iterations=1)
    ffs = _local_ffs_times()
    report("[STON93] local comparison (scaled)",
           [("Inversion sequential 1MB read", inv["seq_read"], None),
            ("native FFS sequential 1MB read", ffs["seq_read"], None),
            ("Inversion random page reads", inv["random_read"], None),
            ("native FFS random page reads", ffs["random_read"], None)])
    seq_throughput_ratio = ffs["seq_read"] / inv["seq_read"]
    rand_throughput_ratio = ffs["random_read"] / inv["random_read"]
    # Paper: >90% sequential, ~70% random (full-size hardware, warm
    # metadata).  Shape at this scale: Inversion within a small factor
    # of native on both patterns, closer on sequential than the
    # network configurations ever get.
    assert seq_throughput_ratio > 0.45
    assert rand_throughput_ratio > 0.3
