"""Three access paths to the same Inversion data.

The paper predicts the trade-off of its planned NFS interface: clients
get protocol compatibility but "no multi-operation transaction
protection", i.e. every write is its own forced transaction — the exact
cost profile that makes `create` slow.  This bench measures Inversion
through (a) the in-process library, (b) the TCP client/server library,
and (c) the NFS bridge, on the same workload.
"""

import os
import shutil
import tempfile

from conftest import report

from repro.bench.harness import build_inversion_sp
from repro.core.filesystem import InversionFS
from repro.core.nfs_bridge import InversionNFSBridge
from repro.db.database import Database
from repro.nfs.client import NFSClient, UDP_RPC_10MBIT
from repro.sim.clock import SimClock
from repro.sim.network import NetworkModel

NBYTES = 400_000
IO = 8064


def _bridge_times():
    workdir = tempfile.mkdtemp(prefix="bridge-bench-")
    clock = SimClock()
    db = Database.create(os.path.join(workdir, "db"), clock=clock)
    fs = InversionFS.mkfs(db)
    client = NFSClient(InversionNFSBridge(fs),
                       NetworkModel(clock=clock, params=UDP_RPC_10MBIT))
    fh = client.create("/f")
    start = clock.now()
    pos = 0
    while pos < NBYTES:
        n = min(IO, NBYTES - pos)
        client.write(fh, pos, b"b" * n)
        pos += n
    write_time = clock.now() - start
    db.flush_caches()
    start = clock.now()
    pos = 0
    while pos < NBYTES:
        n = min(IO, NBYTES - pos)
        client.read(fh, pos, n)
        pos += n
    read_time = clock.now() - start
    db.close()
    shutil.rmtree(workdir, ignore_errors=True)
    return write_time, read_time


def _native_times():
    built = build_inversion_sp()
    try:
        client = built.adapter.client
        clock = built.adapter.clock
        fd = client.p_creat("/f")
        client.p_begin()
        start = clock.now()
        pos = 0
        while pos < NBYTES:
            n = min(IO, NBYTES - pos)
            client.p_write(fd, b"b" * n)
            pos += n
        client.p_commit()
        write_time = clock.now() - start
        built.adapter.db.flush_caches()
        client.p_begin()
        client.p_lseek(fd, 0, 0, 0)
        start = clock.now()
        pos = 0
        while pos < NBYTES:
            n = min(IO, NBYTES - pos)
            client.p_read(fd, n)
            pos += n
        client.p_commit()
        read_time = clock.now() - start
        return write_time, read_time
    finally:
        built.close()


def test_nfs_bridge_vs_native_library(benchmark):
    def run():
        return _native_times(), _bridge_times()
    (nat_w, nat_r), (br_w, br_r) = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    report("Access paths to Inversion (400 KB in 8 KB units)",
           [("native library, one txn: write", nat_w, None),
            ("NFS bridge, per-op txns:  write", br_w, None),
            ("native library: read", nat_r, None),
            ("NFS bridge: read", br_r, None)])
    # The paper's predicted cost of protocol compatibility: without
    # client-controlled transactions, each NFS write commits alone, so
    # bridge writes are much slower than one batched transaction.
    assert br_w > nat_w * 2
    # Reads carry only the RPC overhead — the gap must be far smaller.
    assert br_r < br_w
    assert br_r / nat_r < br_w / nat_w
