"""Multi-user scale acceptance: deterministic scaling and contention bounds.

Asserts the multi-user experiment's two headline claims — disjoint-file
throughput at least doubles going from 1 to 8 clients, and the hot-file
workload's waits stay bounded with nobody starved — plus the
determinism gate: two runs with the same scheduler seed produce
byte-identical results (the event-trace hash is part of the JSON).  The
run also emits ``BENCH_multiuser.json`` at the repo root, which CI
archives and EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.bench.multiuser import (
    CLIENT_COUNTS,
    TXNS_PER_CLIENT,
    run_clients,
    run_multiuser,
)

BENCH_PATH = os.path.join(os.path.dirname(__file__), "..",
                          "BENCH_multiuser.json")


@pytest.fixture(scope="module")
def multiuser() -> dict:
    results = run_multiuser()
    with open(BENCH_PATH, "w", encoding="utf-8") as f:
        json.dump(results, f, indent=2)
        f.write("\n")
    return results


def test_disjoint_throughput_scales(multiuser):
    """The scale claim: 8 disjoint clients push at least twice the
    single-client transaction rate — commit clustering turns eight
    per-transaction sweeps into one, the shared metadata pages are
    written once per burst, and the batched records share one force."""
    assert multiuser["scaling"]["speedup_8_over_1"] >= 2.0
    rates = [r["txns_per_sec"] for r in multiuser["disjoint"]]
    assert rates == sorted(rates), "throughput must rise monotonically"


def test_commit_clustering_batches_every_round(multiuser):
    """At N clients each commit burst shares one status force: commits
    per force equals the client count, exactly."""
    for row in multiuser["disjoint"]:
        assert row["commits_per_force"] == float(row["clients"]), row
        assert row["status_forces"] == TXNS_PER_CLIENT


def test_disjoint_workload_never_conflicts(multiuser):
    for row in multiuser["disjoint"]:
        contention = row["contention"]
        assert contention["lock_waits"] == 0
        assert contention["lock_deadlocks"] == 0
        assert contention["lock_timeouts"] == 0


def test_hot_file_contention_profile(multiuser):
    """The hot file serializes: waits grow with clients but stay
    bounded, no deadlocks (single lock order) and nobody starves."""
    hot = multiuser["hot"]
    waits = [r["contention"]["lock_waits"] for r in hot]
    assert waits[0] == 0 and all(w > 0 for w in waits[1:])
    for row in hot:
        assert row["contention"]["lock_deadlocks"] == 0
        assert row["contention"]["lock_timeouts"] == 0
        assert row["fairness"]["starved"] is False
        assert row["fairness"]["max_park_s"] <= 1.0


def test_every_configuration_commits_all_transactions(multiuser):
    for row in multiuser["disjoint"] + multiuser["hot"]:
        assert row["transactions"] == row["clients"] * TXNS_PER_CLIENT
    assert [r["clients"] for r in multiuser["disjoint"]] == list(CLIENT_COUNTS)


def test_determinism_gate(multiuser):
    """Two runs of one configuration with the same seed are identical
    to the byte: same event-trace hash, same every-counter."""
    again = run_clients(4, hot=True)
    baseline = next(r for r in multiuser["hot"] if r["clients"] == 4)
    assert again == baseline
    assert again["trace_hash"] == baseline["trace_hash"]
