#!/usr/bin/env python3
"""Tertiary storage: the optical jukebox, tape, migration rules, and
vacuum archiving — the Sequoia 2000 storage hierarchy.

"Files that meet some selection criteria should be moved from fast,
expensive storage like magnetic disk to slower, cheaper storage."

Run:  python examples/tiered_storage_migration.py
"""

import shutil
import tempfile

from repro.core import InversionClient, InversionFS, O_RDWR
from repro.core.chunks import chunk_table_name
from repro.core.compression import CompressionService
from repro.core.migration import MigrationEngine
from repro.db.database import Database


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="inversion-tiers-")
    db = Database.create(workdir + "/db")
    fs = InversionFS.mkfs(db)
    client = InversionClient(fs)

    # Register the storage hierarchy with the device manager switch.
    db.add_device("juke0", "jukebox")   # 327 GB Sony WORM optical
    db.add_device("tape0", "tape")      # Metrum VHS tape library
    print("device switch:")
    for row in db.switch.describe():
        print(f"   {row['name']:<10} {row['type']:<12} "
              f"default={row['default']}")

    # Hot data lands on magnetic disk; a bulk dataset goes straight to
    # the jukebox at creation (the mode-encodes-device idea).
    fd = client.p_creat("/notes.txt")
    client.p_write(fd, b"analysis notes\n" * 20)
    client.p_close(fd)
    fd = client.p_creat("/raw_scan.dat", device="juke0")
    client.p_write(fd, bytes(range(256)) * 512)
    client.p_close(fd)
    print("\nraw_scan.dat created directly on:", "juke0")
    print("  readable transparently:",
          len(fs.read_file("/raw_scan.dat")), "bytes")

    # Declarative migration policy.
    engine = MigrationEngine(fs)
    engine.add_rule("big-to-optical", "size(file) > 10000", "juke0",
                    priority=5)
    engine.add_rule("cold-to-tape", 'owner(file) = "archive-bot"', "tape0",
                    priority=1)

    fd = client.p_creat("/results.bin")
    client.p_write(fd, b"\x42" * 60_000)
    client.p_close(fd)
    fd = client.p_creat("/old_logs.txt", owner="archive-bot")
    client.p_write(fd, b"1991-01-01 boot\n" * 50)
    client.p_close(fd)

    tx = fs.begin()
    reports = engine.run(tx)
    fs.commit(tx)
    print("\nmigration run:")
    for report in reports:
        print(f"   rule {report.rule}: moved {report.moved or '-'} "
              f"skipped {report.skipped or '-'}")
    for path in ("/notes.txt", "/results.bin", "/old_logs.txt",
                 "/raw_scan.dat"):
        print(f"   {path:<16} on {engine.device_of(fs.resolve(path))}")

    # Files remain fully usable after migration — including history.
    assert fs.read_file("/results.bin")[:4] == b"\x42\x42\x42\x42"
    print("\nresults.bin reads correctly from the jukebox")

    # Vacuum old versions of a hot file onto the jukebox: current data
    # stays fast, history moves to cheap WORM media.
    t0 = db.clock.now()
    fd = client.p_open("/notes.txt", O_RDWR)
    client.p_write(fd, b"REVISED ANALYSIS\n")
    client.p_close(fd)
    table = chunk_table_name(fs.resolve("/notes.txt"))
    stats = db.vacuum(table, archive_device="juke0")
    print(f"\nvacuumed {table}: archived={stats.archived} "
          f"kept={stats.kept} (archive on juke0)")
    print("   current :", fs.read_file("/notes.txt")[:16])
    print("   history :", fs.read_file("/notes.txt", timestamp=t0)[:14],
          "(served from the optical archive)")

    # Chunk compression for the scientific datasets.
    svc = CompressionService(fs)
    dataset = b"".join(b"sample,%08d,%08d\n" % (i, i * i)
                       for i in range(20_000))
    tx = fs.begin()
    svc.create_compressed(tx, "/dataset.z", dataset, device="juke0")
    fs.commit(tx)
    info = svc.info("/dataset.z")
    print(f"\ncompressed dataset: {info.usize} -> "
          f"{fs.stat('/dataset.z').size} bytes "
          f"(ratio {svc.compression_ratio('/dataset.z'):.2f}) on juke0")
    middle = svc.read("/dataset.z", info.usize // 2, 18)
    print("   random access into the middle:", middle)

    juke = db.switch.get("juke0")
    print(f"\njukebox stats: burns={juke.stats.burns} "
          f"platter_loads={juke.stats.platter_loads} "
          f"staging_hits={juke.stats.staging_hits}")

    db.close()
    shutil.rmtree(workdir, ignore_errors=True)
    print("\ndone.")


if __name__ == "__main__":
    main()
