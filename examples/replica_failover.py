#!/usr/bin/env python3
"""Replication walkthrough: a primary, two read replicas, a crash, a
promotion — and not one committed byte lost.

Run:  PYTHONPATH=src python examples/replica_failover.py

See REPLICATION.md for the design (delta feed, cursors, promotion).
"""

import shutil
import tempfile

from repro.errors import ReplicaReadOnlyError
from repro.replica import ReplicatedCluster


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="inversion-replica-")
    print(f"cluster directory: {workdir}")

    # A primary plus two replicas seeded from a base backup.  Writers
    # connect to the primary; readers are routed round-robin across the
    # replicas (session-granular: a session sticks to its server).
    cluster = ReplicatedCluster.create(workdir + "/cluster", nreplicas=2)
    r0, r1 = cluster.replicas

    # -- write on the primary, read at the replicas' horizon ----------
    writer = cluster.writer_client()
    writer.p_begin()
    fd = writer.p_creat("/ledger")
    writer.p_write(fd, b"balance: 100\n")
    writer.p_close(fd)
    writer.p_commit()
    cluster.primary_db.tm.flush_commits()

    print("replica horizons before sync:", r0.horizon(), r1.horizon())
    print("entries applied by sync_all :", cluster.sync_all())
    print("replica horizons after sync :", r0.horizon(), r1.horizon())

    reader = cluster.reader_client()          # lands on a replica
    fd = reader.p_open("/ledger", 0)
    print("read from", reader.server.replica_id, ":",
          reader.p_read(fd, 100).decode().strip())
    reader.p_close(fd)

    # Replicas refuse mutations — route writes to the primary.
    try:
        reader.p_creat("/not-here")
    except ReplicaReadOnlyError as exc:
        print("replica write refused       :", exc)
    reader.close()

    # -- more committed work, then the primary dies -------------------
    writer.p_begin()
    fd = writer.p_open("/ledger", 2)
    writer.p_write(fd, b"balance: 250\n")
    writer.p_close(fd)
    writer.p_commit()
    writer.close()
    cluster.primary_db.tm.flush_commits()
    # Replicas have NOT synced this yet — they are lagging on purpose.
    print("lag at crash time (xids)    :",
          cluster.feed.durable_horizon() - r0.horizon())

    cluster.primary_db.simulate_crash()
    print("primary crashed.")

    # -- promote ------------------------------------------------------
    # The feed's durable log survives the primary process, so promotion
    # drains it first: the new primary recovers to exactly the state a
    # local restart of the crashed primary would reach.  The surviving
    # replica re-points at the new primary's feed and resumes from its
    # cursor — no re-seed.
    new_primary = cluster.promote()
    print("promoted", new_primary.replica_id,
          "| horizon", new_primary.horizon())

    # The committed-but-unsynced write survived: the survivor catches
    # up from the promoted feed and serves it.
    cluster.sync_all()
    reader = cluster.reader_client()          # the surviving replica
    fd = reader.p_open("/ledger", 0)
    print("read from", reader.server.replica_id, "after failover:",
          reader.p_read(fd, 100).decode().strip())
    reader.p_close(fd)
    reader.close()

    # -- life goes on: the new primary takes writes -------------------
    writer = cluster.writer_client()
    writer.p_begin()
    fd = writer.p_open("/ledger", 2)
    writer.p_write(fd, b"balance: 300\n")
    writer.p_close(fd)
    writer.p_commit()
    writer.close()
    cluster.primary_db.tm.flush_commits()
    cluster.sync_all()

    reader = cluster.reader_client()
    fd = reader.p_open("/ledger", 0)
    print("read after new history      :",
          reader.p_read(fd, 100).decode().strip())
    reader.p_close(fd)
    reader.close()

    cluster.close()
    shutil.rmtree(workdir, ignore_errors=True)
    print("done.")


if __name__ == "__main__":
    main()
