#!/usr/bin/env python3
"""Transactions, crash recovery, and fine-grained time travel — the
software-project scenario from the paper:

"Programmers working on a large software project may need to be able to
check in several fixed source code files at the same time.  If the
system crashes when some, but not all, of the files have been checked
in, then the software project's master directory will be in an
inconsistent state."

Run:  python examples/time_travel_recovery.py
"""

import shutil
import tempfile

from repro.core import InversionClient, InversionFS, O_RDWR
from repro.db.database import Database


def checkin(client, files: dict[str, bytes]) -> None:
    """Atomically replace several source files."""
    client.p_begin()
    for path, contents in files.items():
        if client.fs.exists(path, tx=client._tx):
            fd = client.p_open(path, O_RDWR)
        else:
            fd = client.p_creat(path)
        client.p_write(fd, contents)
        client.p_close(fd)
    client.p_commit()


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="inversion-ttr-")
    db = Database.create(workdir + "/db")
    fs = InversionFS.mkfs(db)
    client = InversionClient(fs)
    client.p_mkdir("/project")

    # Check-in 1: a consistent pair of files.
    checkin(client, {
        "/project/parser.c": b"int parse(void);            /* v1 */\n",
        "/project/parser.h": b"/* header v1 */\n",
    })
    v1_time = db.clock.now()
    print("v1 checked in at simulated t =", round(v1_time, 3))

    # Check-in 2: another consistent pair.
    checkin(client, {
        "/project/parser.c": b"int parse(int strict);      /* v2 */\n",
        "/project/parser.h": b"/* header v2: adds strict */\n",
    })
    v2_time = db.clock.now()
    print("v2 checked in at simulated t =", round(v2_time, 3))

    # Check-in 3 crashes halfway: one file written, commit never happens.
    client.p_begin()
    fd = client.p_open("/project/parser.c", O_RDWR)
    client.p_write(fd, b"int parse(char *buf);       /* v3, TORN */\n")
    db.buffers.flush_all()          # bytes may even reach the platters…
    db.simulate_crash()             # …but the commit record never does
    print("\n*** crash during check-in 3 ***\n")

    db = Database.open(workdir + "/db")   # recovery = read the status file
    fs = InversionFS.attach(db)
    client = InversionClient(fs)
    print("recovery report:", db.tm.recovery_report())
    print("parser.c after crash:",
          fs.read_file("/project/parser.c").decode().strip())
    print("parser.h after crash:",
          fs.read_file("/project/parser.h").decode().strip())
    assert b"v2" in fs.read_file("/project/parser.c")

    # Time travel: every past check-in is still visible, consistently.
    for label, t in (("v1", v1_time), ("v2", v2_time)):
        c_src = fs.read_file("/project/parser.c", timestamp=t).decode().strip()
        c_hdr = fs.read_file("/project/parser.h", timestamp=t).decode().strip()
        print(f"\nstate as of {label}:")
        print("   parser.c:", c_src)
        print("   parser.h:", c_hdr)

    # Accidental deletion + undelete.
    client.p_unlink("/project/parser.h")
    print("\nparser.h deleted; directory:", fs.readdir("/project"))
    recovered = fs.read_file("/project/parser.h", timestamp=v2_time)
    fd = client.p_creat("/project/parser.h")
    client.p_write(fd, recovered)
    client.p_close(fd)
    print("undeleted:", fs.read_file("/project/parser.h").decode().strip())

    # rcs-style diffing across history, no revision files needed.
    print("\nhistory of parser.c:")
    for label, t in (("v1", v1_time), ("v2", v2_time), ("now", None)):
        text = fs.read_file("/project/parser.c", timestamp=t).decode().strip()
        print(f"   {label:>3}: {text}")

    db.close()
    shutil.rmtree(workdir, ignore_errors=True)
    print("\ndone.")


if __name__ == "__main__":
    main()
