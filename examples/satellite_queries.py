#!/usr/bin/env python3
"""The Sequoia 2000 scenario: typed satellite images, content functions,
and the paper's own queries.

Stores a corpus of synthetic Thematic Mapper images (five spectral
bands, controllable snow cover), troff documentation, registers the
Table 2 functions, and runs the paper's example queries — including

    retrieve (snow(file), filename)
    where filetype(file) = "tm_image"
    and snow(file) / pixelcount(file) > 0.5

Run:  python examples/satellite_queries.py
"""

import shutil
import tempfile

from repro.core import InversionClient, InversionFS
from repro.core.filetypes import FileTypeManager
from repro.core.functions import (
    make_satellite_image,
    make_troff_document,
    register_standard_types,
)
from repro.db.database import Database


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="inversion-sequoia-")
    db = Database.create(workdir + "/db")
    fs = InversionFS.mkfs(db)
    client = InversionClient(fs)

    # Declare the Table 2 types and register their functions.
    tx = fs.begin()
    register_standard_types(fs, tx)
    fs.commit(tx)
    ftm = FileTypeManager(fs)
    tx = fs.begin()
    print("functions on tm_image:",
          ", ".join(ftm.functions_for_type("tm_image", tx)))
    print("functions on troff_document:",
          ", ".join(ftm.functions_for_type("troff_document", tx)))
    fs.commit(tx)

    def store(path: str, data: bytes, ftype: str, owner: str = "frew") -> None:
        fd = client.p_creat(path, owner=owner)
        client.p_write(fd, data)
        client.p_close(fd)
        tx = fs.begin()
        fs.set_file_type(tx, path, ftype)
        fs.commit(tx)

    # A season of TM scenes with varying snow cover.
    client.p_mkdir("/tm")
    scenes = [("sierra_jan", 0.8), ("sierra_apr", 0.55),
              ("sierra_jul", 0.05), ("delta_jan", 0.15)]
    for name, snow_fraction in scenes:
        image = make_satellite_image(64, 64, nbands=5,
                                     snow_fraction=snow_fraction,
                                     seed=hash(name) % 1000)
        store(f"/tm/{name}.tm", image, "tm_image")
    print(f"stored {len(scenes)} TM scenes (5 bands, 64x64)")

    # Project documentation as troff.
    client.p_mkdir("/papers")
    store("/papers/inversion.t",
          make_troff_document("Inversion FS", ["RISC", "POSTGRES", "storage"]),
          "troff_document", owner="mao")
    store("/papers/sequoia.t",
          make_troff_document("Sequoia 2000", ["climate", "GIS"]),
          "troff_document", owner="mao")

    # -- the paper's queries -------------------------------------------
    print("\nretrieve (filename) where \"RISC\" in keywords(file):")
    for row in client.p_query(
            'retrieve (filename) '
            'where filetype(file) = "troff_document" '
            'and "RISC" in keywords(file)'):
        print("  ", row[0])

    print("\nsnowy TM scenes (snow(file)/pixelcount(file) > 0.5):")
    for count, name in client.p_query(
            'retrieve (snow(file), filename) '
            'where filetype(file) = "tm_image" '
            'and snow(file) / pixelcount(file) > 0.5 sort by filename'):
        print(f"   {name}: {count} snow pixels")

    print("\nper-scene band-0 statistics via content functions:")
    for name, avg, pixels in client.p_query(
            'retrieve (filename, pixelavg(file, 0), pixelcount(file)) '
            'where filetype(file) = "tm_image" sort by filename'):
        print(f"   {name}: mean(band0) = {avg:.1f} over {pixels} pixels")

    print("\nfiles owned by mao in /papers:")
    for row in client.p_query(
            'retrieve (filename, size(file)) '
            'where owner(file) = "mao" and dir(file) = "/papers" '
            'sort by filename'):
        print("  ", row)

    # Type checking is enforced: snow() on a troff document fails.
    try:
        client.p_query('retrieve (snow(file)) '
                       'where filename = "inversion.t"')
    except Exception as exc:
        print(f"\nsnow() on a troff document correctly refused:\n   {exc}")

    db.close()
    shutil.rmtree(workdir, ignore_errors=True)
    print("\ndone.")


if __name__ == "__main__":
    main()
