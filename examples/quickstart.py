#!/usr/bin/env python3
"""Quickstart: mount Inversion, use files, travel in time.

Run:  python examples/quickstart.py
"""

import shutil
import tempfile

from repro.core import InversionClient, InversionFS, O_RDONLY, O_RDWR
from repro.db.database import Database


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="inversion-quickstart-")
    print(f"database directory: {workdir}")

    # One POSTGRES database = one Inversion mount point.
    db = Database.create(workdir + "/db")
    fs = InversionFS.mkfs(db)
    client = InversionClient(fs)

    # -- ordinary file operations, through the Figure 2 library -------
    client.p_mkdir("/etc")
    fd = client.p_creat("/etc/passwd")
    client.p_write(fd, b"root:x:0:0:root:/root:/bin/sh\n")
    client.p_close(fd)
    print("readdir /   :", client.p_readdir("/"))
    print("readdir /etc:", client.p_readdir("/etc"))
    print("contents    :", fs.read_file("/etc/passwd").decode().strip())

    # The file's data lives in a database table named from its oid —
    # Figure 1's decomposition.
    print("chunk table :", fs.chunk_table_of("/etc/passwd"))

    # -- transactions spanning several files ---------------------------
    client.p_begin()
    fd1 = client.p_creat("/main.c")
    fd2 = client.p_creat("/main.h")
    client.p_write(fd1, b'#include "main.h"\nint main(void) { return 0; }\n')
    client.p_write(fd2, b"#pragma once\n")
    client.p_commit()          # both files appear atomically
    client.p_close(fd1)
    client.p_close(fd2)
    print("after commit:", client.p_readdir("/"))

    # -- fine-grained time travel --------------------------------------
    t_before = db.clock.now()
    fd = client.p_open("/etc/passwd", O_RDWR)
    client.p_write(fd, b"hacked!")
    client.p_close(fd)
    print("now         :", fs.read_file("/etc/passwd")[:7])
    print("as of before:", fs.read_file("/etc/passwd", timestamp=t_before)[:7])

    # Historical opens go through the ordinary library too:
    hist = client.p_open("/etc/passwd", O_RDONLY, timestamp=t_before)
    print("p_open(ts)  :", client.p_read(hist, 7))
    client.p_close(hist)

    # -- undelete -------------------------------------------------------
    t_alive = db.clock.now()
    client.p_unlink("/main.c")
    print("deleted     :", "/main.c" not in client.p_readdir("/"))
    recovered = fs.read_file("/main.c", timestamp=t_alive)
    fd = client.p_creat("/main.c")
    client.p_write(fd, recovered)
    client.p_close(fd)
    print("undeleted   :", fs.read_file("/main.c").split(b"\n")[0].decode())

    # -- ad hoc queries over the file system -----------------------------
    rows = client.p_query(
        'retrieve (filename, size(file)) where size(file) > 10 sort by filename')
    print("query       :", rows)

    # -- instant crash recovery -------------------------------------------
    db.simulate_crash()
    db2 = Database.open(workdir + "/db")
    fs2 = InversionFS.attach(db2)
    print("after crash :", sorted(fs2.readdir("/")))
    print("recovery    :", db2.tm.recovery_report())

    db2.close()
    shutil.rmtree(workdir, ignore_errors=True)
    print("done.")


if __name__ == "__main__":
    main()
