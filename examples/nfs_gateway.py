#!/usr/bin/env python3
"""NFS access to Inversion — the paper's announced next step, working.

An unmodified NFS client (the same one used against the ULTRIX
baseline) mounts the Inversion file system through
:class:`~repro.core.nfs_bridge.InversionNFSBridge`.  Every NFS
operation is its own atomic transaction, and the promised ``fnctl``
extension exposes time travel to protocol clients.

Run:  python examples/nfs_gateway.py
"""

import shutil
import tempfile

from repro.core import InversionClient, InversionFS
from repro.core.nfs_bridge import InversionNFSBridge
from repro.db.database import Database
from repro.nfs.client import NFSClient, UDP_RPC_10MBIT
from repro.sim.network import NetworkModel


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="inversion-nfs-")
    db = Database.create(workdir + "/db")
    fs = InversionFS.mkfs(db)
    native = InversionClient(fs)

    # The gateway: protocol server backed by Inversion, and an
    # off-the-shelf NFS client on the simulated Ethernet.
    bridge = InversionNFSBridge(fs)
    nfs = NFSClient(bridge, NetworkModel(clock=db.clock,
                                         params=UDP_RPC_10MBIT))

    # A protocol client creates and writes a file...
    fh = nfs.create("/shared.dat")
    nfs.write(fh, 0, b"written over NFS, stored in POSTGRES tables")
    print("NFS wrote  :", nfs.read(fh, 0, 100))

    # ...which the native library sees immediately (same tables).
    print("native sees:", fs.read_file("/shared.dat"))

    # Native writes are equally visible to the protocol client.
    t_before_update = db.clock.now()
    fd = native.p_open("/shared.dat", 2)
    native.p_write(fd, b"UPDATED")
    native.p_close(fd)
    print("NFS re-read:", nfs.read(fh, 0, 11))

    # The fnctl time-travel extension: pin the handle to the past.
    bridge.fcntl_set_timestamp(fh, t_before_update)
    print("pinned read:", nfs.read(fh, 0, 11),
          f"(as of t={bridge.fcntl_get_timestamp(fh):.3f})")
    try:
        nfs.write(fh, 0, b"no")
    except Exception as exc:
        print("pinned write refused:", type(exc).__name__)
    bridge.fcntl_set_timestamp(fh, None)

    # Large files: NFS clients reach offsets FFS never supported.
    big = nfs.create("/beyond_ffs")
    five_gb = 5 * 1024 ** 3
    bridge.nfs_write(big, five_gb, b"!")  # 8 KB protocol units still apply
    print(f"size beyond FFS limit: {bridge.nfs_getattr(big).size:,} bytes")

    # The trade-off the paper predicted: every NFS write is an atomic
    # transaction, so there is no multi-file commit through NFS — but
    # "users who want the richer services may still link with the
    # special library":
    native.p_begin()
    fd1 = native.p_creat("/pair.a")
    fd2 = native.p_creat("/pair.b")
    native.p_write(fd1, b"1")
    native.p_write(fd2, b"2")
    native.p_commit()
    native.p_close(fd1)
    native.p_close(fd2)
    print("atomic pair via library:", sorted(fs.readdir("/")))

    db.close()
    shutil.rmtree(workdir, ignore_errors=True)
    print("done.")


if __name__ == "__main__":
    main()
