"""Legacy shim so `pip install -e .` works without the `wheel` package
(offline environments): `pip install -e . --no-use-pep517` or plain
`python setup.py develop` both route through here.  All real metadata
lives in pyproject.toml.
"""
from setuptools import setup

setup()
